package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Determinism enforces the seeded-simulation contract: identical seeds
// must produce identical results. It flags four nondeterminism sources
// in the simulation, classification, scheduling, and experiment packages:
//
//  1. draws from math/rand's unseeded global source (use a seeded
//     *rand.Rand, e.g. sim.NewRNG);
//  2. wall-clock reads — time.Now() or time.Since() — outside the
//     wall-clock allowlist, in function bodies and in package-level var
//     initializers alike (simulation code must use the engine's virtual
//     clock or an injected clock; overhead measurement goes through the
//     allowlisted internal/obs/prof profiler);
//  3. iteration over a map that appends to a slice declared outside the
//     loop without a subsequent deterministic sort — the slice's order
//     then depends on Go's randomized map iteration;
//  4. method calls on a shared RNG (*sim.RNG or *math/rand.Rand) captured
//     inside a concurrent function literal — a `go` statement or a task
//     passed to par.ParFor/ParMap/ParMapErr. Concurrent draws interleave
//     by schedule, so results change run to run; derive per-task
//     substreams (RNG.Substreams) before the fan-out instead. Receivers
//     selected through an index expression (subs[i].Float64()) are the
//     sanctioned per-task pattern and are not flagged;
//  5. tracer emission (obs.Tracer / obs.Shard methods that append to the
//     event stream) inside a map-range loop — the events land in Go's
//     randomized map order, breaking the byte-identical-trace contract;
//     iterate sorted keys instead;
//  6. tracer emission on a tracer or shard captured inside a concurrent
//     function literal — emissions interleave by schedule; derive
//     per-task shards (Tracer.Shards) before the fan-out, as with RNG
//     substreams. shards[i].Instant(...) passes;
//  7. sim.Engine scheduling (Schedule/After/Ticker) or RNG draws inside a
//     map-range body — fault plans and other schedules armed in Go's
//     randomized map order produce a different event sequence (and
//     consume RNG streams in a different order) every run; iterate a
//     slice or sorted keys instead;
//  8. compound float accumulation (+= or -=) into a variable that outlives
//     a map-range loop — float addition is not associative, so the sum's
//     low bits vary with Go's randomized iteration order even though every
//     element is visited; iterate sorted keys (or a slice) instead.
//     Integer accumulation is associative and passes.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "flags unseeded global math/rand draws, wall-clock reads " +
		"(time.Now/time.Since, including package-level var initializers), " +
		"unsorted result accumulation across map iteration, shared-RNG " +
		"capture in concurrent tasks, trace emission in map order or " +
		"across concurrent tasks, engine scheduling or RNG draws in " +
		"map order, and order-sensitive float accumulation across map " +
		"iteration in simulation code",
	Scope: []string{
		"internal/sim",
		"internal/experiments",
		"internal/classify",
		"internal/sched",
		"internal/core",
		"internal/par",
		"internal/obs",
		"internal/chaos",
		"internal/slo",
	},
	Run: runDeterminism,
}

// wallClockAllowlist names the functions (as pkgpath.Func or
// pkgpath.Recv.Method) that are sanctioned wall-clock readers: overhead
// measurement that is intentionally not simulated. Everything else must
// inject a clock or use virtual time.
var wallClockAllowlist = map[string]bool{
	"quasar/internal/experiments.wallClock": true,
	// The self-profiler is the sanctioned wall-clock boundary: wallNow is
	// its single read point and base anchors it at process start. See the
	// package doc of internal/obs/prof for why it sits outside the
	// determinism contract.
	"quasar/internal/obs/prof.wallNow": true,
	"quasar/internal/obs/prof.base":    true,
}

// globalRandFuncs are the math/rand package-level functions that draw
// from (or mutate) the shared global source. Constructors like rand.New
// and rand.NewSource are deliberately absent: they are how seeded
// generators are built.
var globalRandFuncs = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true,
	// math/rand/v2 additions.
	"N": true, "IntN": true, "Int32": true, "Int32N": true, "Int64N": true,
	"Uint": true, "UintN": true, "Uint32N": true, "Uint64N": true,
}

func runDeterminism(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Body == nil {
					continue
				}
				checkFuncDeterminism(pass, d)
			case *ast.GenDecl:
				if d.Tok != token.VAR {
					continue
				}
				checkVarDeterminism(pass, d)
			}
		}
	}
}

// checkVarDeterminism flags wall-clock reads in package-level var
// initializers. These run before any function body, so the function walk
// never sees them — `var start = time.Now()` would otherwise smuggle a
// wall-clock anchor into simulation code unnoticed. The allowlist key is
// pkgpath.VarName (first name of the spec), matching funcKey's shape.
func checkVarDeterminism(pass *Pass, gd *ast.GenDecl) {
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok || len(vs.Values) == 0 || len(vs.Names) == 0 {
			continue
		}
		key := pass.Pkg.Path + "." + vs.Names[0].Name
		for _, v := range vs.Values {
			ast.Inspect(v, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if pkgPath, name, ok := pkgFuncCall(pass, call); ok {
					reportWallClock(pass, call, pkgPath, name, key)
				}
				return true
			})
		}
	}
}

// reportWallClock flags time.Now and time.Since calls outside the
// wall-clock allowlist. Both read the real clock: Since is Now minus its
// argument, so it is exactly as nondeterministic under fixed seeds.
func reportWallClock(pass *Pass, call *ast.CallExpr, pkgPath, name, allowKey string) {
	if pkgPath != "time" || wallClockAllowlist[allowKey] {
		return
	}
	switch name {
	case "Now":
		pass.Reportf(call.Pos(),
			"bare time.Now() is nondeterministic under fixed seeds; use the sim engine's virtual clock or an injected clock")
	case "Since":
		pass.Reportf(call.Pos(),
			"time.Since reads the wall clock and is nondeterministic under fixed seeds; use the sim engine's virtual clock or route overhead measurement through internal/obs/prof")
	}
}

// parFanoutFuncs are the internal/par entry points whose function-literal
// arguments run concurrently on the worker pool.
var parFanoutFuncs = map[string]bool{
	"ParFor": true, "ParMap": true, "ParMapErr": true,
}

func checkFuncDeterminism(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if pkgPath, name, ok := pkgFuncCall(pass, n); ok {
				switch {
				case (pkgPath == "math/rand" || pkgPath == "math/rand/v2") && globalRandFuncs[name]:
					pass.Reportf(n.Pos(),
						"call to global math/rand.%s draws from the unseeded shared source; use a seeded generator (sim.NewRNG)", name)
				case pkgPath == "time":
					reportWallClock(pass, n, pkgPath, name, funcKey(pass, fd))
				}
				if strings.HasSuffix(pkgPath, "internal/par") && parFanoutFuncs[name] {
					for _, arg := range n.Args {
						if fl, ok := arg.(*ast.FuncLit); ok {
							checkConcurrentCapture(pass, fl, "par."+name+" task")
						}
					}
				}
			}
		case *ast.GoStmt:
			if fl, ok := n.Call.Fun.(*ast.FuncLit); ok {
				checkConcurrentCapture(pass, fl, "goroutine")
			}
		case *ast.RangeStmt:
			checkMapRange(pass, fd, n)
		}
		return true
	})
}

// checkConcurrentCapture flags method calls inside a concurrent function
// literal whose receiver is shared mutable simulation state captured from
// the enclosing scope: an RNG (concurrent draws interleave by goroutine
// schedule, breaking the identical-seeds-identical-results contract and
// racing, for sim.RNG) or a tracer/shard emission (concurrent appends
// interleave the same way, breaking the byte-identical-trace contract).
// Receivers reached through an index expression — subs[i].Float64() or
// shards[i].Instant(...) on a pre-derived per-task slice — are the
// sanctioned pattern and pass. Values declared inside the literal are
// task-local and also pass.
func checkConcurrentCapture(pass *Pass, fl *ast.FuncLit, context string) {
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		tv, ok := pass.Pkg.Info.Types[sel.X]
		if !ok {
			return true
		}
		isRNG := isRNGType(tv.Type)
		isTrace := isTracerType(tv.Type) && tracerEmitMethods[sel.Sel.Name]
		if !isRNG && !isTrace {
			return true
		}
		root := capturedRoot(pass, sel.X, fl)
		if root == nil {
			return true
		}
		if isRNG {
			pass.Reportf(call.Pos(),
				"RNG %s is shared across concurrent tasks in this %s: draws interleave by schedule; derive per-task substreams (RNG.Substreams) before the fan-out",
				root.Name(), context)
		} else {
			pass.Reportf(call.Pos(),
				"tracer %s is shared across concurrent tasks in this %s: emissions interleave by schedule; derive per-task shards (Tracer.Shards) before the fan-out",
				root.Name(), context)
		}
		return true
	})
}

// isRNGType reports whether t is (a pointer to) a random-number generator:
// sim.RNG or math/rand's Rand.
func isRNGType(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	path, name := named.Obj().Pkg().Path(), named.Obj().Name()
	switch {
	case strings.HasSuffix(path, "internal/sim") && name == "RNG":
		return true
	case (path == "math/rand" || path == "math/rand/v2") && name == "Rand":
		return true
	}
	return false
}

// tracerEmitMethods are the obs.Tracer and obs.Shard methods that append
// to the event stream. Read-only accessors (Enabled, Len, Events, Tracks)
// are deliberately absent: they are safe anywhere.
var tracerEmitMethods = map[string]bool{
	"Instant": true, "InstantAt": true, "Begin": true, "End": true,
	"BeginAsync": true, "EndAsync": true, "Counter": true, "Merge": true,
}

// isTracerType reports whether t is (a pointer to) an event emitter of the
// observability subsystem: obs.Tracer or obs.Shard.
func isTracerType(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	path, name := named.Obj().Pkg().Path(), named.Obj().Name()
	return strings.HasSuffix(path, "internal/obs") && (name == "Tracer" || name == "Shard")
}

// capturedRoot walks a receiver expression (ident, selector chain, parens)
// down to its root identifier and returns that identifier's object when it
// is declared outside the function literal — i.e. captured. An index
// expression anywhere in the chain, or a root declared inside the literal,
// returns nil.
func capturedRoot(pass *Pass, expr ast.Expr, fl *ast.FuncLit) types.Object {
	for {
		switch e := expr.(type) {
		case *ast.ParenExpr:
			expr = e.X
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.Ident:
			obj := pass.Pkg.Info.Uses[e]
			if obj == nil || obj.Pos() == 0 { // builtin or unresolved
				return nil
			}
			if obj.Pos() >= fl.Pos() && obj.Pos() <= fl.End() {
				return nil // declared inside the literal: task-local
			}
			return obj
		default: // IndexExpr, CallExpr, ...: per-task selection or fresh value
			return nil
		}
	}
}

// pkgFuncCall resolves a call of the form pkg.Func where pkg is an
// imported package name, returning the package path and function name.
func pkgFuncCall(pass *Pass, call *ast.CallExpr) (pkgPath, name string, ok bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", "", false
	}
	pn, ok := pass.Pkg.Info.Uses[id].(*types.PkgName)
	if !ok {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// funcKey renders fd as pkgpath.Func or pkgpath.Recv.Method for allowlist
// lookups.
func funcKey(pass *Pass, fd *ast.FuncDecl) string {
	key := pass.Pkg.Path + "."
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		t := fd.Recv.List[0].Type
		if star, ok := t.(*ast.StarExpr); ok {
			t = star.X
		}
		if gen, ok := t.(*ast.IndexExpr); ok { // generic receiver
			t = gen.X
		}
		if id, ok := t.(*ast.Ident); ok {
			key += id.Name + "."
		}
	}
	return key + fd.Name.Name
}

// checkMapRange flags `for ... := range m` over a map when the loop body
// appends to a slice declared outside the loop and no deterministic sort
// of that slice follows the loop in the same function.
func checkMapRange(pass *Pass, fd *ast.FuncDecl, rs *ast.RangeStmt) {
	tv, ok := pass.Pkg.Info.Types[rs.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	// Collect slices declared outside the loop that the body appends to.
	var targets []types.Object
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || !isBuiltinAppend(pass, call) || i >= len(as.Lhs) {
				continue
			}
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			obj := pass.Pkg.Info.Uses[id]
			if obj == nil {
				obj = pass.Pkg.Info.Defs[id]
			}
			// Only slices that outlive the loop iteration matter.
			if obj != nil && (obj.Pos() < rs.Pos() || obj.Pos() > rs.End()) {
				targets = append(targets, obj)
			}
		}
		return true
	})
	for _, obj := range targets {
		if !sortedAfter(pass, fd, rs, obj) {
			pass.Reportf(rs.For,
				"map iteration order is randomized: %s is appended to inside this loop; sort the keys first or sort %s afterwards",
				obj.Name(), obj.Name())
		}
	}
	// Tracer emission inside the loop body lands events in randomized map
	// order, breaking the byte-identical-trace contract. There is no
	// sort-afterwards escape hatch: the tracer's sequence numbers are
	// assigned at emission.
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !tracerEmitMethods[sel.Sel.Name] {
			return true
		}
		tv, ok := pass.Pkg.Info.Types[sel.X]
		if !ok || !isTracerType(tv.Type) {
			return true
		}
		pass.Reportf(call.Pos(),
			"tracer emission inside map iteration lands events in Go's randomized map order; iterate a sorted key slice instead")
		return true
	})
	checkFloatAccumulation(pass, rs)
	// Engine scheduling or RNG draws in map order change the simulation's
	// event sequence (and stream consumption order) run to run: a fault
	// plan armed this way produces a different fault schedule every time.
	// Like tracer emission, there is no sort-afterwards escape hatch.
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		tv, ok := pass.Pkg.Info.Types[sel.X]
		if !ok {
			return true
		}
		switch {
		case isEngineType(tv.Type) && engineScheduleMethods[sel.Sel.Name]:
			pass.Reportf(call.Pos(),
				"sim.Engine.%s inside map iteration arms events in Go's randomized map order; iterate a slice (e.g. the fault list) or sorted keys instead", sel.Sel.Name)
		case isRNGType(tv.Type):
			pass.Reportf(call.Pos(),
				"RNG draw inside map iteration consumes the stream in Go's randomized map order; iterate a slice or sorted keys instead")
		}
		return true
	})
}

// checkFloatAccumulation flags `sum += v` / `sum -= v` inside a map-range
// body when sum is a float declared outside the loop: float addition is not
// associative, so the final value's low bits depend on Go's randomized
// iteration order. There is no sort-afterwards escape hatch — the damage is
// done during accumulation — so the fix is to iterate sorted keys.
func checkFloatAccumulation(pass *Pass, rs *ast.RangeStmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || (as.Tok != token.ADD_ASSIGN && as.Tok != token.SUB_ASSIGN) || len(as.Lhs) != 1 {
			return true
		}
		tv, ok := pass.Pkg.Info.Types[as.Lhs[0]]
		if !ok || !isFloatType(tv.Type) {
			return true
		}
		obj := rootObject(pass, as.Lhs[0])
		if obj == nil || (obj.Pos() >= rs.Pos() && obj.Pos() <= rs.End()) {
			return true // loop-local accumulator: dies with the iteration
		}
		pass.Reportf(as.TokPos,
			"float accumulation into %s inside map iteration is order-sensitive (float addition is not associative); iterate sorted keys instead",
			obj.Name())
		return true
	})
}

// isFloatType reports whether t's underlying type is a floating-point or
// complex basic type.
func isFloatType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

// rootObject walks an lvalue (ident, selector chain, index, parens) down to
// its root identifier and returns that identifier's object, or nil.
func rootObject(pass *Pass, expr ast.Expr) types.Object {
	for {
		switch e := expr.(type) {
		case *ast.ParenExpr:
			expr = e.X
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.Ident:
			obj := pass.Pkg.Info.Uses[e]
			if obj == nil {
				obj = pass.Pkg.Info.Defs[e]
			}
			return obj
		default:
			return nil
		}
	}
}

// engineScheduleMethods are the sim.Engine methods that add events to the
// simulation timeline. Read-only accessors (Now, Pending, Fired) and event
// removal (Cancel, already-identified) are deliberately absent.
var engineScheduleMethods = map[string]bool{
	"Schedule": true, "After": true, "Ticker": true,
}

// isEngineType reports whether t is (a pointer to) sim.Engine.
func isEngineType(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return strings.HasSuffix(named.Obj().Pkg().Path(), "internal/sim") && named.Obj().Name() == "Engine"
}

// isBuiltinAppend reports whether call invokes the append builtin.
func isBuiltinAppend(pass *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.Pkg.Info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// sortedAfter reports whether fd contains, after the range statement, a
// sorting call — sort.*, slices.Sort*, or a local helper whose name
// contains "sort" — that mentions obj among its arguments.
func sortedAfter(pass *Pass, fd *ast.FuncDecl, rs *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= rs.End() || !isSortCall(pass, call) {
			return true
		}
		for _, arg := range call.Args {
			if mentionsObject(pass, arg, obj) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// isSortCall recognizes deterministic-ordering calls: the sort and slices
// packages, plus any function whose name mentions "sort" (local helpers
// like sortInts).
func isSortCall(pass *Pass, call *ast.CallExpr) bool {
	if pkgPath, _, ok := pkgFuncCall(pass, call); ok {
		if pkgPath == "sort" || pkgPath == "slices" {
			return true
		}
	}
	var name string
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	}
	return strings.Contains(strings.ToLower(name), "sort")
}

// mentionsObject reports whether expr references obj anywhere in its
// subtree.
func mentionsObject(pass *Pass, expr ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.Pkg.Info.Uses[id] == obj {
			found = true
			return false
		}
		return !found
	})
	return found
}
