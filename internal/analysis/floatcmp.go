package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatCmp flags == and != between floating-point operands. Exact float
// equality is almost never what simulation or classification code means:
// accumulated rounding makes mathematically equal quantities compare
// unequal, and the failure is silent and seed-dependent. Compare with
// quasar/internal/floats.AlmostEqual (or an explicit tolerance) instead;
// genuinely intentional exact comparisons — sort tie-breaks, sentinel
// values — carry a //lint:allow(floatcmp) annotation saying so.
var FloatCmp = &Analyzer{
	Name: "floatcmp",
	Doc: "flags exact ==/!= comparison of floating-point values; use " +
		"floats.AlmostEqual or annotate the intentional exact comparison",
	Run: runFloatCmp,
}

func runFloatCmp(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if tv, ok := pass.Pkg.Info.Types[be]; ok && tv.Value != nil {
				// The whole comparison is a compile-time constant.
				return true
			}
			if isFloat(pass, be.X) && isFloat(pass, be.Y) {
				pass.Reportf(be.OpPos,
					"exact %s comparison of floating-point values; use floats.AlmostEqual or annotate with //lint:allow(floatcmp)",
					be.Op)
			}
			return true
		})
	}
}

// isFloat reports whether expr has a floating-point type (float32,
// float64, or a named type with such an underlying type).
func isFloat(pass *Pass, expr ast.Expr) bool {
	tv, ok := pass.Pkg.Info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
