package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file builds the lightweight interprocedural call graph that powers
// the hot-path analyzers (hotalloc and the -hotpath report). The graph is
// intentionally modest — stdlib go/ast + go/types only, no SSA — but it
// resolves enough edges to map the simulator's per-tick loops:
//
//   - direct calls (f(), pkg.F()) and method calls with concrete receivers;
//   - interface method calls, expanded to every module-local concrete type
//     implementing the interface (how Runtime.tick reaches the managers and
//     OfferedLoad reaches each loadgen.Pattern);
//   - function references (a func name passed as a value, e.g. a tick
//     callback handed to Ticker) — a reference edge, since the callee runs
//     wherever the value is invoked;
//   - function literals, attributed to the enclosing declaration: a closure
//     body is part of the function that builds it.
//
// Two source directives refine the graph:
//
//	//quasar:hot [reason]   on a FuncDecl declares an extra hot root
//	                        (used by fixtures and by code whose callers the
//	                        graph cannot see).
//	//quasar:cold reason    on a FuncDecl fences a traversal boundary: the
//	                        function and everything only it reaches stay
//	                        cold. The reason is mandatory — a boundary is an
//	                        auditable claim that the path is off the hot
//	                        loop (e.g. runs only when tracing is enabled).
type CallGraph struct {
	fset  *token.FileSet
	nodes map[*types.Func]*cgNode
	// edges maps caller -> callee set, over both declared and abstract
	// (interface-method) functions.
	edges map[*types.Func]map[*types.Func]bool
	// marked are //quasar:hot roots; cold are //quasar:cold boundaries.
	marked []*types.Func
	cold   map[*types.Func]bool
	// byKey indexes every known function (declared or abstract) by its
	// canonical key, for hotpath.json root/stop resolution.
	byKey map[string]*types.Func
	// diags carries directive misuse findings (a //quasar:cold without a
	// justification) into the analysis run.
	diags []Diagnostic
}

// cgNode is a declared function with a body in the loaded packages.
type cgNode struct {
	fn   *types.Func
	decl *ast.FuncDecl
	pkg  *Package
}

// FuncKey renders a function's canonical key: "pkgpath.Func" for package
// functions, "pkgpath.(*Recv).Method" / "pkgpath.Recv.Method" for methods
// (pointer vs value receiver), and "pkgpath.Iface.Method" for interface
// methods. hotpath.json roots and stops use exactly this form.
func FuncKey(fn *types.Func) string {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return pkg + "." + fn.Name()
	}
	t := sig.Recv().Type()
	star := false
	if p, okp := t.(*types.Pointer); okp {
		t = p.Elem()
		star = true
	}
	name := "?"
	switch tt := t.(type) {
	case *types.Named:
		name = tt.Obj().Name()
	case *types.Interface:
		name = "interface"
	}
	if star {
		return fmt.Sprintf("%s.(*%s).%s", pkg, name, fn.Name())
	}
	return fmt.Sprintf("%s.%s.%s", pkg, name, fn.Name())
}

// BuildCallGraph constructs the call graph over the given type-checked
// packages. Only module-local functions become nodes; calls into the
// standard library or other dependencies are graph boundaries.
func BuildCallGraph(fset *token.FileSet, pkgs []*Package) *CallGraph {
	g := &CallGraph{
		fset:  fset,
		nodes: make(map[*types.Func]*cgNode),
		edges: make(map[*types.Func]map[*types.Func]bool),
		cold:  make(map[*types.Func]bool),
		byKey: make(map[string]*types.Func),
	}
	// Pass 1: register every declared function and its directives.
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				g.nodes[obj] = &cgNode{fn: obj, decl: fd, pkg: pkg}
				g.byKey[FuncKey(obj)] = obj
				g.scanDirectives(obj, fd)
			}
		}
	}
	// Pass 2: add edges. Walking the whole declaration attributes function
	// literals to the enclosing function, and recording every *types.Func
	// use covers both calls and references-taken-as-values.
	abstract := make(map[*types.Func]bool)
	for fn, node := range g.nodes {
		if node.decl.Body == nil {
			continue
		}
		ast.Inspect(node.decl.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			callee, ok := node.pkg.Info.Uses[id].(*types.Func)
			if !ok {
				return true
			}
			g.addEdge(fn, callee)
			if isAbstract(callee) {
				abstract[callee] = true
			}
			return true
		})
	}
	// Pass 3: expand abstract (interface-method) callees to every concrete
	// module-local implementation: an edge iface.M -> (*T).M for each named
	// type T whose pointer type implements the interface.
	var named []*types.Named
	for _, pkg := range pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			if nt, ok := tn.Type().(*types.Named); ok && !types.IsInterface(nt) {
				named = append(named, nt)
			}
		}
	}
	for m := range abstract {
		g.byKey[FuncKey(m)] = m
		iface, ok := m.Type().(*types.Signature).Recv().Type().Underlying().(*types.Interface)
		if !ok {
			continue
		}
		for _, nt := range named {
			pt := types.NewPointer(nt)
			if !types.Implements(pt, iface) && !types.Implements(nt, iface) {
				continue
			}
			sel := types.NewMethodSet(pt).Lookup(m.Pkg(), m.Name())
			if sel == nil {
				continue
			}
			if impl, ok := sel.Obj().(*types.Func); ok {
				g.addEdge(m, impl)
			}
		}
	}
	return g
}

// isAbstract reports whether fn is an interface method (no body anywhere).
func isAbstract(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return types.IsInterface(sig.Recv().Type())
}

func (g *CallGraph) addEdge(from, to *types.Func) {
	if from == to {
		return
	}
	set := g.edges[from]
	if set == nil {
		set = make(map[*types.Func]bool)
		g.edges[from] = set
	}
	set[to] = true
}

// scanDirectives records //quasar:hot and //quasar:cold markers from the
// function's doc comment.
func (g *CallGraph) scanDirectives(fn *types.Func, fd *ast.FuncDecl) {
	if fd.Doc == nil {
		return
	}
	for _, c := range fd.Doc.List {
		body, ok := strings.CutPrefix(c.Text, "//")
		if !ok {
			continue
		}
		body = strings.TrimSpace(body)
		switch {
		case body == "quasar:hot" || strings.HasPrefix(body, "quasar:hot "):
			g.marked = append(g.marked, fn)
		case body == "quasar:cold" || strings.HasPrefix(body, "quasar:cold "):
			reason := strings.TrimSpace(strings.TrimPrefix(body, "quasar:cold"))
			if reason == "" {
				g.diags = append(g.diags, Diagnostic{
					Pos:      g.fset.Position(c.Pos()),
					Analyzer: "hotpath",
					Message:  "//quasar:cold boundary requires a justification (why this path is off the hot loop)",
				})
			}
			g.cold[fn] = true
		}
	}
}

// HotSet is the set of functions reachable from the declared hot roots,
// with the traversal fenced at //quasar:cold boundaries and declared stops.
type HotSet struct {
	g     *CallGraph
	set   map[*types.Func]bool
	roots map[*types.Func]bool
	// Unresolved lists configured root/stop keys that named no function in
	// the loaded packages. RunConfigured drops them (a partial package
	// pattern legitimately excludes roots living elsewhere in the module)
	// and records them here so full-module runs can treat any entry as a
	// stale hotpath.json key.
	Unresolved []string
}

// KnownKey reports whether key names a function in the graph.
func (g *CallGraph) KnownKey(key string) bool {
	_, ok := g.byKey[key]
	return ok
}

// Reachable computes the hot set from the given root keys (hotpath.json)
// plus every //quasar:hot-marked function, pruning traversal at stop keys
// and //quasar:cold boundaries. Unknown root or stop keys are an error:
// a silently unmatched root would quietly unfence the hot path.
func (g *CallGraph) Reachable(rootKeys, stopKeys []string) (*HotSet, error) {
	h := &HotSet{
		g:     g,
		set:   make(map[*types.Func]bool),
		roots: make(map[*types.Func]bool),
	}
	stop := make(map[*types.Func]bool)
	for _, key := range stopKeys {
		fn, ok := g.byKey[key]
		if !ok {
			return nil, fmt.Errorf("analysis: unknown hot-path stop %q (renamed or removed? keys look like %q)",
				key, "quasar/internal/sim.(*Engine).Step")
		}
		stop[fn] = true
	}
	var queue []*types.Func
	enqueue := func(fn *types.Func) {
		if h.set[fn] || stop[fn] || g.cold[fn] {
			return
		}
		h.set[fn] = true
		queue = append(queue, fn)
	}
	for _, key := range rootKeys {
		fn, ok := g.byKey[key]
		if !ok {
			return nil, fmt.Errorf("analysis: unknown hot-path root %q (renamed or removed? keys look like %q)",
				key, "quasar/internal/sim.(*Engine).Step")
		}
		h.roots[fn] = true
		enqueue(fn)
	}
	for _, fn := range g.marked {
		h.roots[fn] = true
		enqueue(fn)
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		for callee := range g.edges[fn] {
			enqueue(callee)
		}
	}
	return h, nil
}

// Contains reports whether fn is hot-reachable.
func (h *HotSet) Contains(fn *types.Func) bool { return h != nil && h.set[fn] }

// ContainsDecl reports whether the given declaration in pkg is
// hot-reachable. Function literals inside a hot declaration are hot by
// attribution; analyzers therefore gate on the enclosing FuncDecl.
func (h *HotSet) ContainsDecl(pkg *Package, fd *ast.FuncDecl) bool {
	if h == nil {
		return false
	}
	fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
	return ok && h.set[fn]
}

// HotFunc is one reachable function in the report listing.
type HotFunc struct {
	Key  string
	Root bool
	Pos  token.Position
	End  token.Position
}

// Funcs lists the hot set's declared functions sorted by key. Abstract
// interface methods traversed on the way are omitted — they have no body
// to audit.
func (h *HotSet) Funcs() []HotFunc {
	var out []HotFunc
	for fn := range h.set {
		node, ok := h.g.nodes[fn]
		if !ok {
			continue
		}
		out = append(out, HotFunc{
			Key:  FuncKey(fn),
			Root: h.roots[fn],
			Pos:  h.g.fset.Position(node.decl.Pos()),
			End:  h.g.fset.Position(node.decl.End()),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Len reports the number of hot-reachable declared functions.
func (h *HotSet) Len() int {
	n := 0
	for fn := range h.set {
		if _, ok := h.g.nodes[fn]; ok {
			n++
		}
	}
	return n
}
