package analysis

import (
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestParseAllowDirective(t *testing.T) {
	cases := []struct {
		comment string
		names   []string
		ok      bool
	}{
		{"//lint:allow(floatcmp)", []string{"floatcmp"}, true},
		{"//lint:allow(floatcmp) sort tie-break", []string{"floatcmp"}, true},
		{"// lint:allow(determinism, errdiscard)", []string{"determinism", "errdiscard"}, true},
		{"//lint:allow()", nil, false},
		{"// ordinary comment", nil, false},
		{"//lint:allow(unclosed", nil, false},
	}
	for _, tc := range cases {
		names, ok := parseAllowDirective(tc.comment)
		if ok != tc.ok || !reflect.DeepEqual(names, tc.names) {
			t.Errorf("parseAllowDirective(%q) = %v, %v; want %v, %v",
				tc.comment, names, ok, tc.names, tc.ok)
		}
	}
}

func TestAnalyzerScope(t *testing.T) {
	a := &Analyzer{Name: "x", Scope: []string{"internal/sim", "internal/core"}}
	if !a.appliesTo("quasar/internal/sim") {
		t.Error("scoped package not admitted")
	}
	if a.appliesTo("quasar/internal/cf") {
		t.Error("out-of-scope package admitted")
	}
	if !(&Analyzer{Name: "y"}).appliesTo("anything") {
		t.Error("empty scope must admit everything")
	}
}

// TestScopeSkipsUnscopedPackages verifies that a ./...-style (non-
// explicit) load does not run scoped analyzers outside their scope, while
// an explicit load does.
func TestScopeSkipsUnscopedPackages(t *testing.T) {
	loader, err := NewLoader(moduleRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load(filepath.Join("internal", "analysis", "testdata", "src", "determinism_bad"))
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || !pkgs[0].Explicit {
		t.Fatalf("expected one explicit package, got %+v", pkgs)
	}
	if diags := Run(loader.Fset, pkgs, []*Analyzer{Determinism}); len(diags) == 0 {
		t.Error("explicit load must bypass analyzer scope")
	}
	pkgs[0].Explicit = false
	if diags := Run(loader.Fset, pkgs, []*Analyzer{Determinism}); len(diags) != 0 {
		t.Errorf("non-explicit out-of-scope package produced %d diagnostics", len(diags))
	}
}

// TestLoaderWalksModule checks that ./... discovery finds the module's
// packages, skips testdata, and type-checks cross-package references.
func TestLoaderWalksModule(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	loader, err := NewLoader(moduleRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	byPath := map[string]*Package{}
	for _, p := range pkgs {
		if strings.Contains(p.Path, "testdata") {
			t.Errorf("./... must skip testdata, found %s", p.Path)
		}
		if p.Explicit {
			t.Errorf("./... packages must not be explicit: %s", p.Path)
		}
		byPath[p.Path] = p
	}
	for _, want := range []string{"quasar", "quasar/internal/sim", "quasar/internal/core", "quasar/cmd/quasar-lint"} {
		p := byPath[want]
		if p == nil {
			t.Fatalf("package %s not discovered", want)
		}
		if p.Types == nil || p.Types.Scope().Len() == 0 {
			t.Errorf("package %s not type-checked", want)
		}
	}
}

// TestSuiteCleanOnRepository is the self-hosting check: the analyzer
// suite must report nothing on the repository itself. It mirrors the
// quasar-lint CLI exactly — same hotpath.json, same analyzer set — so
// the checked-in hot-root declarations are exercised too (with a nil
// config the hot-path analyzers see no roots and their suppressions
// would be flagged as unused).
func TestSuiteCleanOnRepository(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	root := moduleRoot(t)
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := LoadHotPathConfig(filepath.Join(root, "hotpath.json"))
	if err != nil {
		t.Fatalf("loading hotpath.json: %v", err)
	}
	diags, hot, err := RunConfigured(loader.Fset, pkgs, All(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range hot.Unresolved {
		t.Errorf("hot-path key %q resolves to nothing in the module", key)
	}
	if hot.Len() == 0 {
		t.Error("hotpath.json roots reached no functions")
	}
	for _, d := range diags {
		t.Errorf("unexpected diagnostic: %s", d)
	}
}
