package analysis

import (
	"go/ast"
	"go/types"
)

// ErrDiscard flags call statements whose error result is silently
// dropped: `f()` as a bare statement when f returns an error. A dropped
// error hides exactly the failures — snapshot decode mismatches, invalid
// configurations — that the reproduction's invariants depend on
// surfacing. Assign the error (even to _, which at least documents the
// decision) or handle it.
var ErrDiscard = &Analyzer{
	Name: "errdiscard",
	Doc: "flags expression statements that discard an error return; " +
		"handle the error or assign it explicitly",
	Run: runErrDiscard,
}

var errType = types.Universe.Lookup("error").Type()

// ignoredCallees are callees whose error results are conventionally
// dropped (terminal output to stdout), mirroring errcheck's default
// ignore list. Fprint* variants are still flagged: their writer may be a
// file or buffer where a short write matters.
var ignoredCallees = map[string]bool{
	"fmt.Print": true, "fmt.Printf": true, "fmt.Println": true,
}

func runErrDiscard(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			es, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := es.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			if ignoredCallees[calleeName(call)] {
				return true
			}
			if returnsError(pass, call) {
				pass.Reportf(call.Pos(),
					"error result of %s is silently discarded; handle it or assign it explicitly",
					calleeName(call))
			}
			return true
		})
	}
}

// returnsError reports whether the call's result type is error or a tuple
// containing an error.
func returnsError(pass *Pass, call *ast.CallExpr) bool {
	tv, ok := pass.Pkg.Info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if types.Identical(t.At(i).Type(), errType) {
				return true
			}
		}
		return false
	default:
		return types.Identical(t, errType)
	}
}

// calleeName renders the called expression for the diagnostic message.
func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			return id.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	default:
		return "call"
	}
}
