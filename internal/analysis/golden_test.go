package analysis

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files with current analyzer output")

// goldenCases pairs each analyzer with its known-bad and known-clean
// fixture packages under testdata/src.
var goldenCases = []struct {
	analyzer *Analyzer
	fixture  string
	wantBad  bool // known-bad fixtures must produce at least one diagnostic
}{
	{Determinism, "determinism_bad", true},
	{Determinism, "determinism_clean", false},
	{Determinism, "determinism_par_bad", true},
	{Determinism, "determinism_par_clean", false},
	{Determinism, "determinism_obs_bad", true},
	{Determinism, "determinism_obs_clean", false},
	{Determinism, "determinism_chaos_bad", true},
	{Determinism, "determinism_chaos_clean", false},
	{Determinism, "determinism_slo_bad", true},
	{Determinism, "determinism_slo_clean", false},
	{Determinism, "determinism_prof_bad", true},
	{Determinism, "determinism_prof_clean", false},
	{FloatCmp, "floatcmp_bad", true},
	{FloatCmp, "floatcmp_clean", false},
	{SnapshotDrift, "snapshotdrift_bad", true},
	{SnapshotDrift, "snapshotdrift_clean", false},
	{ErrDiscard, "errdiscard_bad", true},
	{ErrDiscard, "errdiscard_clean", false},
	{HotAlloc, "hotalloc_bad", true},
	{HotAlloc, "hotalloc_clean", false},
	{LockCheck, "lockcheck_bad", true},
	{LockCheck, "lockcheck_clean", false},
	{ParCapture, "parcapture_bad", true},
	{ParCapture, "parcapture_clean", false},
	{FloatCmp, "unusedallow_bad", true},
	{FloatCmp, "unusedallow_clean", false},
}

func TestGolden(t *testing.T) {
	for _, tc := range goldenCases {
		t.Run(tc.fixture, func(t *testing.T) {
			got := runFixture(t, []*Analyzer{tc.analyzer}, tc.fixture)
			if tc.wantBad && got == "" {
				t.Fatalf("known-bad fixture %s produced no diagnostics", tc.fixture)
			}
			if !tc.wantBad && got != "" {
				t.Fatalf("known-clean fixture %s produced diagnostics:\n%s", tc.fixture, got)
			}
			goldenPath := filepath.Join("testdata", "golden", tc.fixture+".golden")
			if *update {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics differ from %s\n--- got ---\n%s--- want ---\n%s",
					goldenPath, got, want)
			}
		})
	}
}

// runFixture loads one fixture package explicitly and formats the
// resulting diagnostics with basenamed files, one per line.
func runFixture(t *testing.T, analyzers []*Analyzer, fixture string) string {
	t.Helper()
	loader, err := NewLoader(moduleRoot(t))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load(filepath.Join("internal", "analysis", "testdata", "src", fixture))
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, d := range Run(loader.Fset, pkgs, analyzers) {
		fmt.Fprintf(&b, "%s:%d:%d: [%s] %s\n",
			filepath.Base(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
	return b.String()
}

// moduleRoot locates the repository root relative to this test's working
// directory.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test working directory")
		}
		dir = parent
	}
}
