package analysis

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Package is one parsed and type-checked package of the module under
// analysis.
type Package struct {
	// Path is the package's import path.
	Path string
	// Dir is the absolute directory holding the package's sources.
	Dir string
	// Explicit marks packages named directly on the command line, as
	// opposed to matched by a ./... pattern. Explicit packages bypass
	// analyzer scopes.
	Explicit bool
	// Files holds the parsed non-test sources in filename order. Test
	// files are outside the suite's remit (they are exercised by the test
	// suite itself) and are neither parsed nor type-checked.
	Files []*ast.File
	// Types and Info are the go/types results for Files.
	Types *types.Package
	Info  *types.Info
}

// Loader discovers, parses, and type-checks the packages of a single Go
// module using only the standard library. Module-local imports are
// resolved through the loader's own cache (type-checking dependencies
// first); all other imports go to the compiler's export data, falling
// back to type-checking the dependency from source.
type Loader struct {
	// Fset positions every file the loader touches.
	Fset *token.FileSet

	root       string // module root: the directory containing go.mod
	modulePath string
	pkgs       map[string]*Package // keyed by import path
	checking   map[string]bool     // import-cycle guard
	std        types.ImporterFrom  // export-data importer
	src        types.ImporterFrom  // source importer fallback
}

// NewLoader returns a loader for the module rooted at root (the directory
// containing go.mod).
func NewLoader(root string) (*Loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePathOf(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	return &Loader{
		Fset:       token.NewFileSet(),
		root:       abs,
		modulePath: modPath,
		pkgs:       make(map[string]*Package),
		checking:   make(map[string]bool),
	}, nil
}

// modulePathOf reads the module path from a go.mod file.
func modulePathOf(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s", gomod)
}

// Load resolves the given patterns to packages and type-checks them.
// Supported patterns: "./..." (every package under the module root,
// skipping testdata, vendor, and hidden directories), a "dir/..." prefix
// walk, or a plain directory path. Directory patterns without "..." are
// marked Explicit.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	var paths []string
	explicit := make(map[string]bool)
	seen := make(map[string]bool)
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "" || pat == "." {
				pat = l.root
			}
		}
		dir := pat
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(l.root, dir)
		}
		dirs := []string{dir}
		if recursive {
			var err error
			dirs, err = walkPackageDirs(dir)
			if err != nil {
				return nil, err
			}
		}
		for _, d := range dirs {
			ip, err := l.importPathFor(d)
			if err != nil {
				return nil, err
			}
			if seen[ip] {
				continue
			}
			seen[ip] = true
			paths = append(paths, ip)
			if !recursive {
				explicit[ip] = true
			}
		}
	}
	var out []*Package
	for _, ip := range paths {
		pkg, err := l.loadPath(ip)
		if err != nil {
			return nil, err
		}
		pkg.Explicit = pkg.Explicit || explicit[ip]
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// walkPackageDirs returns every directory under root that contains at
// least one non-test .go file, skipping testdata, vendor, and
// hidden/underscore directories.
func walkPackageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		names, err := goSourceNames(path)
		if err != nil {
			return err
		}
		if len(names) > 0 {
			dirs = append(dirs, path)
		}
		return nil
	})
	return dirs, err
}

// goSourceNames lists the .go files in dir that belong to the package on
// this platform, sorted. Excluded, mirroring the go tool's rules:
//
//   - _test.go files — the suite's remit is shipped code; tests exercise
//     themselves;
//   - files whose name starts with "_" or "." — ignored by the toolchain;
//   - files fenced off by a _GOOS/_GOARCH filename suffix or a //go:build
//     (or legacy // +build) constraint that the current platform does not
//     satisfy. Without this, a windows-only file would break type-checking
//     of the whole package on linux.
func goSourceNames(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		n := e.Name()
		if !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") ||
			strings.HasPrefix(n, "_") || strings.HasPrefix(n, ".") {
			continue
		}
		if !filenameMatchesPlatform(n) {
			continue
		}
		ok, err := buildConstraintSatisfied(filepath.Join(dir, n))
		if err != nil {
			return nil, err
		}
		if ok {
			names = append(names, n)
		}
	}
	return names, nil
}

// knownOS and knownArch are the GOOS/GOARCH values recognized in filename
// suffixes and build tags. A conservative subset of the toolchain's list:
// anything unlisted simply is not treated as a platform suffix.
var knownOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "illumos": true, "ios": true, "js": true,
	"linux": true, "netbsd": true, "openbsd": true, "plan9": true,
	"solaris": true, "wasip1": true, "windows": true,
}

var knownArch = map[string]bool{
	"386": true, "amd64": true, "arm": true, "arm64": true,
	"loong64": true, "mips": true, "mips64": true, "mips64le": true,
	"mipsle": true, "ppc64": true, "ppc64le": true, "riscv64": true,
	"s390x": true, "wasm": true,
}

// unixOS mirrors the toolchain's "unix" build tag.
var unixOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "illumos": true, "ios": true, "linux": true,
	"netbsd": true, "openbsd": true, "solaris": true,
}

// filenameMatchesPlatform applies the go tool's implicit filename
// constraints: name_GOOS.go, name_GOARCH.go, and name_GOOS_GOARCH.go only
// build on the matching platform.
func filenameMatchesPlatform(name string) bool {
	base := strings.TrimSuffix(name, ".go")
	parts := strings.Split(base, "_")
	if len(parts) < 2 {
		return true
	}
	last := parts[len(parts)-1]
	if knownArch[last] {
		if last != runtime.GOARCH {
			return false
		}
		if len(parts) >= 3 && knownOS[parts[len(parts)-2]] {
			return parts[len(parts)-2] == runtime.GOOS
		}
		return true
	}
	if knownOS[last] {
		return last == runtime.GOOS
	}
	return true
}

// buildConstraintSatisfied reads the file's header and evaluates its
// //go:build (preferred) or legacy // +build constraint against the
// current platform. Files without a constraint always build.
func buildConstraintSatisfied(path string) (bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return false, err
	}
	expr := headerConstraint(string(data))
	if expr == nil {
		return true, nil
	}
	return expr.Eval(buildTagSatisfied), nil
}

// headerConstraint extracts the first build-constraint expression from the
// comment block preceding the package clause, or nil.
func headerConstraint(src string) constraint.Expr {
	for _, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "//") {
			if constraint.IsGoBuild(line) || constraint.IsPlusBuild(line) {
				if expr, err := constraint.Parse(line); err == nil {
					return expr
				}
			}
			continue
		}
		break // package clause (or any code): constraints must precede it
	}
	return nil
}

// buildTagSatisfied reports whether one build tag holds on this platform:
// the current GOOS/GOARCH, the gc compiler, cgo off (the loader never
// configures cgo), "unix" per the toolchain's definition, and every go1.N
// release tag at or below the toolchain's version.
func buildTagSatisfied(tag string) bool {
	switch tag {
	case runtime.GOOS, runtime.GOARCH, "gc":
		return true
	case "cgo":
		return false
	case "unix":
		return unixOS[runtime.GOOS]
	}
	if rest, ok := strings.CutPrefix(tag, "go1."); ok {
		n, err := strconv.Atoi(rest)
		if err != nil {
			return false
		}
		cur, err := strconv.Atoi(strings.TrimPrefix(strings.Split(runtime.Version(), ".")[1], "go"))
		if err == nil {
			return n <= cur
		}
		// Non-release toolchains (devel builds): assume recent.
		return true
	}
	return false
}

// importPathFor maps an absolute or module-relative directory to its
// import path within the module.
func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.root, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.modulePath, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("analysis: %s is outside module %s", dir, l.root)
	}
	return l.modulePath + "/" + filepath.ToSlash(rel), nil
}

// dirFor inverts importPathFor.
func (l *Loader) dirFor(importPath string) string {
	rel := strings.TrimPrefix(importPath, l.modulePath)
	rel = strings.TrimPrefix(rel, "/")
	return filepath.Join(l.root, filepath.FromSlash(rel))
}

// loadPath parses and type-checks the package at the given module-local
// import path, loading its module-local dependencies first.
func (l *Loader) loadPath(importPath string) (*Package, error) {
	if pkg, ok := l.pkgs[importPath]; ok {
		return pkg, nil
	}
	if l.checking[importPath] {
		return nil, fmt.Errorf("analysis: import cycle through %s", importPath)
	}
	l.checking[importPath] = true
	defer delete(l.checking, importPath)

	dir := l.dirFor(importPath)
	names, err := goSourceNames(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no Go sources in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: (*loaderImporter)(l)}
	tpkg, err := conf.Check(importPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", importPath, err)
	}
	pkg := &Package{Path: importPath, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.pkgs[importPath] = pkg
	return pkg, nil
}

// local reports whether an import path belongs to the module under
// analysis.
func (l *Loader) local(path string) bool {
	return path == l.modulePath || strings.HasPrefix(path, l.modulePath+"/")
}

// importNonLocal resolves a dependency outside the module: first from the
// compiler's export data (fast), then by type-checking it from source.
func (l *Loader) importNonLocal(path, dir string) (*types.Package, error) {
	if l.std == nil {
		if imp, ok := importer.Default().(types.ImporterFrom); ok {
			l.std = imp
		}
	}
	if l.std != nil {
		if pkg, err := l.std.ImportFrom(path, dir, 0); err == nil {
			return pkg, nil
		}
	}
	if l.src == nil {
		l.src = importer.ForCompiler(l.Fset, "source", nil).(types.ImporterFrom)
	}
	return l.src.ImportFrom(path, dir, 0)
}

// loaderImporter adapts the loader to go/types' Importer interfaces.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	return li.ImportFrom(path, li.root, 0)
}

func (li *loaderImporter) ImportFrom(path, dir string, _ types.ImportMode) (*types.Package, error) {
	l := (*Loader)(li)
	if l.local(path) {
		pkg, err := l.loadPath(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.importNonLocal(path, dir)
}
