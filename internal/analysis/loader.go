package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package of the module under
// analysis.
type Package struct {
	// Path is the package's import path.
	Path string
	// Dir is the absolute directory holding the package's sources.
	Dir string
	// Explicit marks packages named directly on the command line, as
	// opposed to matched by a ./... pattern. Explicit packages bypass
	// analyzer scopes.
	Explicit bool
	// Files holds the parsed non-test sources in filename order. Test
	// files are outside the suite's remit (they are exercised by the test
	// suite itself) and are neither parsed nor type-checked.
	Files []*ast.File
	// Types and Info are the go/types results for Files.
	Types *types.Package
	Info  *types.Info
}

// Loader discovers, parses, and type-checks the packages of a single Go
// module using only the standard library. Module-local imports are
// resolved through the loader's own cache (type-checking dependencies
// first); all other imports go to the compiler's export data, falling
// back to type-checking the dependency from source.
type Loader struct {
	// Fset positions every file the loader touches.
	Fset *token.FileSet

	root       string // module root: the directory containing go.mod
	modulePath string
	pkgs       map[string]*Package // keyed by import path
	checking   map[string]bool     // import-cycle guard
	std        types.ImporterFrom  // export-data importer
	src        types.ImporterFrom  // source importer fallback
}

// NewLoader returns a loader for the module rooted at root (the directory
// containing go.mod).
func NewLoader(root string) (*Loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePathOf(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	return &Loader{
		Fset:       token.NewFileSet(),
		root:       abs,
		modulePath: modPath,
		pkgs:       make(map[string]*Package),
		checking:   make(map[string]bool),
	}, nil
}

// modulePathOf reads the module path from a go.mod file.
func modulePathOf(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s", gomod)
}

// Load resolves the given patterns to packages and type-checks them.
// Supported patterns: "./..." (every package under the module root,
// skipping testdata, vendor, and hidden directories), a "dir/..." prefix
// walk, or a plain directory path. Directory patterns without "..." are
// marked Explicit.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	var paths []string
	explicit := make(map[string]bool)
	seen := make(map[string]bool)
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "" || pat == "." {
				pat = l.root
			}
		}
		dir := pat
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(l.root, dir)
		}
		dirs := []string{dir}
		if recursive {
			var err error
			dirs, err = walkPackageDirs(dir)
			if err != nil {
				return nil, err
			}
		}
		for _, d := range dirs {
			ip, err := l.importPathFor(d)
			if err != nil {
				return nil, err
			}
			if seen[ip] {
				continue
			}
			seen[ip] = true
			paths = append(paths, ip)
			if !recursive {
				explicit[ip] = true
			}
		}
	}
	var out []*Package
	for _, ip := range paths {
		pkg, err := l.loadPath(ip)
		if err != nil {
			return nil, err
		}
		pkg.Explicit = pkg.Explicit || explicit[ip]
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// walkPackageDirs returns every directory under root that contains at
// least one non-test .go file, skipping testdata, vendor, and
// hidden/underscore directories.
func walkPackageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		names, err := goSourceNames(path)
		if err != nil {
			return err
		}
		if len(names) > 0 {
			dirs = append(dirs, path)
		}
		return nil
	})
	return dirs, err
}

// goSourceNames lists the non-test .go files in dir, sorted.
func goSourceNames(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if e.IsDir() {
			continue
		}
		n := e.Name()
		if strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
			names = append(names, n)
		}
	}
	return names, nil
}

// importPathFor maps an absolute or module-relative directory to its
// import path within the module.
func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.root, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.modulePath, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("analysis: %s is outside module %s", dir, l.root)
	}
	return l.modulePath + "/" + filepath.ToSlash(rel), nil
}

// dirFor inverts importPathFor.
func (l *Loader) dirFor(importPath string) string {
	rel := strings.TrimPrefix(importPath, l.modulePath)
	rel = strings.TrimPrefix(rel, "/")
	return filepath.Join(l.root, filepath.FromSlash(rel))
}

// loadPath parses and type-checks the package at the given module-local
// import path, loading its module-local dependencies first.
func (l *Loader) loadPath(importPath string) (*Package, error) {
	if pkg, ok := l.pkgs[importPath]; ok {
		return pkg, nil
	}
	if l.checking[importPath] {
		return nil, fmt.Errorf("analysis: import cycle through %s", importPath)
	}
	l.checking[importPath] = true
	defer delete(l.checking, importPath)

	dir := l.dirFor(importPath)
	names, err := goSourceNames(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no Go sources in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: (*loaderImporter)(l)}
	tpkg, err := conf.Check(importPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", importPath, err)
	}
	pkg := &Package{Path: importPath, Dir: dir, Files: files, Types: tpkg, Info: info}
	l.pkgs[importPath] = pkg
	return pkg, nil
}

// local reports whether an import path belongs to the module under
// analysis.
func (l *Loader) local(path string) bool {
	return path == l.modulePath || strings.HasPrefix(path, l.modulePath+"/")
}

// importNonLocal resolves a dependency outside the module: first from the
// compiler's export data (fast), then by type-checking it from source.
func (l *Loader) importNonLocal(path, dir string) (*types.Package, error) {
	if l.std == nil {
		if imp, ok := importer.Default().(types.ImporterFrom); ok {
			l.std = imp
		}
	}
	if l.std != nil {
		if pkg, err := l.std.ImportFrom(path, dir, 0); err == nil {
			return pkg, nil
		}
	}
	if l.src == nil {
		l.src = importer.ForCompiler(l.Fset, "source", nil).(types.ImporterFrom)
	}
	return l.src.ImportFrom(path, dir, 0)
}

// loaderImporter adapts the loader to go/types' Importer interfaces.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	return li.ImportFrom(path, li.root, 0)
}

func (li *loaderImporter) ImportFrom(path, dir string, _ types.ImportMode) (*types.Package, error) {
	l := (*Loader)(li)
	if l.local(path) {
		pkg, err := l.loadPath(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.importNonLocal(path, dir)
}
