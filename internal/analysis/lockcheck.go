package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LockCheck enforces mutex hygiene, which matters doubly here: a leaked
// lock deadlocks the worker pool, and a lock held across a blocking
// operation serializes the deterministic fan-outs the engine's
// parallelism depends on. For every sync.Mutex/RWMutex Lock or RLock it
// checks, within the enclosing statement block:
//
//  1. the lock is released: either the immediately following statement is
//     `defer mu.Unlock()` (the canonical form), or a matching Unlock
//     appears later in the same block with no `return` statement in
//     between — an early return between Lock and Unlock leaks the lock on
//     that path;
//  2. the critical section does not block: no channel send and no
//     par.ParFor/ParMap/ParMapErr submission while the lock is held (for
//     the deferred form, anywhere in the rest of the function). Holding a
//     lock across a fan-out invites lock-ordering deadlocks with the
//     pool's own synchronization and stalls every sibling task.
//
// Intentional exceptions carry //lint:allow(lockcheck) with a
// justification.
var LockCheck = &Analyzer{
	Name: "lockcheck",
	Doc: "flags mutex Lock without defer/paired Unlock on all return " +
		"paths, and locks held across channel sends or par submissions",
	Run: runLockCheck,
}

// lockAcquire/lockRelease pair the acquisition methods with their
// releases.
var lockRelease = map[string]string{"Lock": "Unlock", "RLock": "RUnlock"}

func runLockCheck(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				var list []ast.Stmt
				switch b := n.(type) {
				case *ast.BlockStmt:
					list = b.List
				case *ast.CaseClause:
					list = b.Body
				case *ast.CommClause:
					list = b.Body
				default:
					return true
				}
				checkLockBlock(pass, fd, list)
				return true
			})
		}
	}
}

// checkLockBlock scans one statement list for lock acquisitions and
// validates each critical section. Locks are identified by the printed
// receiver expression (e.g. "s.mu"), so sibling mutexes on one struct stay
// distinct.
func checkLockBlock(pass *Pass, fd *ast.FuncDecl, list []ast.Stmt) {
	for i, stmt := range list {
		recv, release, ok := lockCall(pass, stmt)
		if !ok {
			continue
		}
		// Canonical form: the very next statement defers the release.
		if i+1 < len(list) {
			if def, ok := list[i+1].(*ast.DeferStmt); ok {
				if matchesRelease(pass, def.Call, recv, release) {
					// Lock held to function end: the rest of the function
					// must not block on a send or fan-out.
					reportBlockingAfter(pass, fd.Body, stmt.End(), fd.Body.End(), recv)
					continue
				}
			}
		}
		// Paired form: find the matching release later in this block.
		releaseIdx := -1
		for j := i + 1; j < len(list); j++ {
			if isReleaseStmt(pass, list[j], recv, release) {
				releaseIdx = j
				break
			}
			if def, ok := list[j].(*ast.DeferStmt); ok && matchesRelease(pass, def.Call, recv, release) {
				releaseIdx = j
				break
			}
		}
		if releaseIdx < 0 {
			pass.Reportf(stmt.Pos(),
				"%s.%s is never released in this block: add `defer %s.%s()` on the next line or a paired release on every path",
				recv, acquireName(release), recv, release)
			continue
		}
		// Returns inside the critical section leak the lock on that path.
		for j := i + 1; j < releaseIdx; j++ {
			ast.Inspect(list[j], func(n ast.Node) bool {
				switch n.(type) {
				case *ast.ReturnStmt:
					pass.Reportf(n.Pos(),
						"return while %s is locked leaks the lock on this path; use `defer %s.%s()` immediately after acquiring",
						recv, recv, release)
					return false
				case *ast.FuncLit:
					return false // a nested function returns from itself
				}
				return true
			})
		}
		reportBlockingAfter(pass, fd.Body, list[i].End(), list[releaseIdx].Pos(), recv)
	}
}

// reportBlockingAfter flags channel sends and par submissions positioned
// inside (from, to) — the span where recv's lock is held.
func reportBlockingAfter(pass *Pass, body *ast.BlockStmt, from, to token.Pos, recv string) {
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil || n.Pos() <= from || n.Pos() >= to {
			return true
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(n.Pos(),
				"channel send while %s is locked can block the critical section; release the lock before sending", recv)
		case *ast.CallExpr:
			if pkgPath, name, ok := pkgFuncCall(pass, n); ok &&
				strings.HasSuffix(pkgPath, "internal/par") && parFanoutFuncs[name] {
				pass.Reportf(n.Pos(),
					"par.%s submission while %s is locked stalls the worker pool for the whole fan-out; release the lock first", name, recv)
			}
		}
		return true
	})
}

// lockCall recognizes a statement of the form `x.Lock()` or `x.RLock()` on
// a sync mutex and returns the printed receiver expression and the
// matching release method name.
func lockCall(pass *Pass, stmt ast.Stmt) (string, string, bool) {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return "", "", false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return "", "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	release, ok := lockRelease[sel.Sel.Name]
	if !ok {
		return "", "", false
	}
	tv, ok := pass.Pkg.Info.Types[sel.X]
	if !ok || !isMutexType(tv.Type) {
		return "", "", false
	}
	return types.ExprString(sel.X), release, true
}

// isReleaseStmt recognizes `x.Unlock()` / `x.RUnlock()` on the same
// receiver expression.
func isReleaseStmt(pass *Pass, stmt ast.Stmt, recv, release string) bool {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	return matchesRelease(pass, call, recv, release)
}

func matchesRelease(pass *Pass, call *ast.CallExpr, recv, release string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != release {
		return false
	}
	tv, ok := pass.Pkg.Info.Types[sel.X]
	if !ok || !isMutexType(tv.Type) {
		return false
	}
	return types.ExprString(sel.X) == recv
}

// acquireName inverts lockRelease for messages.
func acquireName(release string) string {
	if release == "RUnlock" {
		return "RLock"
	}
	return "Lock"
}

// isMutexType reports whether t is (a pointer to) sync.Mutex or
// sync.RWMutex.
func isMutexType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	path, name := named.Obj().Pkg().Path(), named.Obj().Name()
	return path == "sync" && (name == "Mutex" || name == "RWMutex")
}
