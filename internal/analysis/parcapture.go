package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ParCapture generalizes the determinism analyzer's shared-RNG rule to all
// shared mutable state: any variable declared outside a concurrent task
// body — a `go` statement's function literal or a task passed to
// par.ParFor/ParMap/ParMapErr — that the body writes to is flagged. Such
// writes race, and even under a mutex their order depends on the goroutine
// schedule, violating the byte-identical-results contract the worker pool
// is built around.
//
// One write shape is sanctioned: assignment through a slice index whose
// element expression roots at a captured slice (`out[i] = ...`). Each task
// owns a disjoint index, so writes never collide and the merged result is
// submission-ordered — exactly the pattern par.ParMap uses internally.
// Map index writes do NOT pass: concurrent map writes fault at runtime.
//
// Intentional exceptions (e.g. a mutex-guarded first-panic capture) carry
// //lint:allow(parcapture) with a justification.
var ParCapture = &Analyzer{
	Name: "parcapture",
	Doc: "flags writes to shared state captured by concurrent task bodies " +
		"(go statements and par fan-outs) without a submission-order merge; " +
		"out[i] = ... index writes into a captured slice are sanctioned",
	Scope: []string{
		"internal/sim",
		"internal/experiments",
		"internal/classify",
		"internal/sched",
		"internal/core",
		"internal/par",
		"internal/obs",
		"internal/chaos",
		"internal/slo",
	},
	Run: runParCapture,
}

func runParCapture(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if pkgPath, name, ok := pkgFuncCall(pass, n); ok &&
					strings.HasSuffix(pkgPath, "internal/par") && parFanoutFuncs[name] {
					for _, arg := range n.Args {
						if fl, ok := arg.(*ast.FuncLit); ok {
							checkCaptureWrites(pass, fl, "par."+name+" task")
						}
					}
				}
			case *ast.GoStmt:
				if fl, ok := n.Call.Fun.(*ast.FuncLit); ok {
					checkCaptureWrites(pass, fl, "goroutine")
				}
			}
			return true
		})
	}
}

// checkCaptureWrites flags assignments and inc/dec statements inside the
// concurrent literal whose target roots at a variable captured from the
// enclosing scope. Nested function literals are traversed too: a deferred
// handler or helper closure still executes on the task's goroutine, so its
// writes are just as concurrent.
func checkCaptureWrites(pass *Pass, fl *ast.FuncLit, context string) {
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				reportCapturedWrite(pass, fl, lhs, n.Pos(), context)
			}
		case *ast.IncDecStmt:
			reportCapturedWrite(pass, fl, n.X, n.Pos(), context)
		}
		return true
	})
}

// reportCapturedWrite flags lhs when it writes through a captured variable.
// Index writes into a captured slice are the sanctioned per-task merge and
// pass; index writes into a captured map are flagged (concurrent map
// writes fault).
func reportCapturedWrite(pass *Pass, fl *ast.FuncLit, lhs ast.Expr, pos token.Pos, context string) {
	if idx, ok := unwrapIndex(lhs); ok {
		root := capturedRoot(pass, idx.X, fl)
		if root == nil {
			return // task-local container
		}
		tv, ok := pass.Pkg.Info.Types[idx.X]
		if ok && tv.Type != nil {
			if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
				pass.Reportf(pos,
					"write into captured map %s from this %s: concurrent map writes fault; collect per-task results in a slice and merge after the fan-out",
					root.Name(), context)
			}
		}
		return // slice/array index write: sanctioned out[i] = ... merge
	}
	root := capturedRoot(pass, lhs, fl)
	if root == nil {
		return
	}
	if _, ok := root.(*types.Var); !ok {
		return
	}
	pass.Reportf(pos,
		"write to captured %s from this %s races and orders by schedule; write out[i] into a pre-sized slice and merge in submission order",
		root.Name(), context)
}

// unwrapIndex peels parens and returns the index expression when lhs is a
// (possibly parenthesized) index write.
func unwrapIndex(lhs ast.Expr) (*ast.IndexExpr, bool) {
	for {
		switch e := lhs.(type) {
		case *ast.ParenExpr:
			lhs = e.X
		case *ast.IndexExpr:
			return e, true
		default:
			return nil, false
		}
	}
}
