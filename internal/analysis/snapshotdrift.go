package analysis

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strings"
)

// SnapshotDrift guards the hot-standby snapshot formats (§4.4 fault
// tolerance). For every struct named *Snapshot declared in a file called
// snapshot.go it verifies that
//
//  1. every field is exported — encoding/json silently drops unexported
//     fields, so an unexported field is state lost on failover;
//  2. every field's type round-trips through encoding/json (no channels,
//     funcs, complex numbers, interfaces, or structs hiding unexported
//     fields, unless the type implements json.Marshaler/Unmarshaler);
//  3. every field is referenced by at least one encode-side function
//     (Snapshot/Marshal/Export) and one decode-side function
//     (Restore/Load/Unmarshal/From) in the same package, so a field added
//     to the struct but forgotten in either path is caught at lint time.
var SnapshotDrift = &Analyzer{
	Name: "snapshotdrift",
	Doc: "verifies snapshot structs hold only exported, JSON-encodable " +
		"fields, each referenced by both the encode and decode paths",
	Run: runSnapshotDrift,
}

var (
	decodeNameHints = []string{"Restore", "Load", "Unmarshal", "From"}
	encodeNameHints = []string{"Snapshot", "Marshal", "Export"}
)

// funcRole classifies a function declaration as encode-side, decode-side,
// or neither, by name. Decode hints win so UnmarshalSnapshot is decode.
type funcRole int

const (
	roleNone funcRole = iota
	roleEncode
	roleDecode
)

func roleOf(name string) funcRole {
	for _, h := range decodeNameHints {
		if strings.Contains(name, h) {
			return roleDecode
		}
	}
	for _, h := range encodeNameHints {
		if strings.Contains(name, h) {
			return roleEncode
		}
	}
	return roleNone
}

func runSnapshotDrift(pass *Pass) {
	// Snapshot structs declared in snapshot.go files.
	type snapStruct struct {
		name   string
		fields []*types.Var
	}
	var snaps []snapStruct
	for _, file := range pass.Pkg.Files {
		if filepath.Base(pass.Fset.Position(file.Package).Filename) != "snapshot.go" {
			continue
		}
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || !strings.HasSuffix(ts.Name.Name, "Snapshot") {
					continue
				}
				obj := pass.Pkg.Info.Defs[ts.Name]
				if obj == nil {
					continue
				}
				st, ok := obj.Type().Underlying().(*types.Struct)
				if !ok {
					continue
				}
				ss := snapStruct{name: ts.Name.Name}
				for i := 0; i < st.NumFields(); i++ {
					ss.fields = append(ss.fields, st.Field(i))
				}
				snaps = append(snaps, ss)
			}
		}
	}
	if len(snaps) == 0 {
		return
	}

	// Index every use of a snapshot field by the role of the enclosing
	// top-level function.
	fieldSet := make(map[types.Object]bool)
	for _, ss := range snaps {
		for _, f := range ss.fields {
			fieldSet[f] = true
		}
	}
	refs := make(map[types.Object]map[funcRole]bool)
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			role := roleOf(fd.Name.Name)
			if role == roleNone {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				if obj := pass.Pkg.Info.Uses[id]; obj != nil && fieldSet[obj] {
					m := refs[obj]
					if m == nil {
						m = make(map[funcRole]bool)
						refs[obj] = m
					}
					m[role] = true
				}
				return true
			})
		}
	}

	for _, ss := range snaps {
		for _, f := range ss.fields {
			switch {
			case !f.Exported():
				pass.Reportf(f.Pos(),
					"snapshot field %s.%s is unexported: encoding/json drops it silently, losing state on failover",
					ss.name, f.Name())
			case !encodable(f.Type(), make(map[types.Type]bool)):
				pass.Reportf(f.Pos(),
					"snapshot field %s.%s has type %s, which does not round-trip through encoding/json",
					ss.name, f.Name(), f.Type())
			default:
				if !refs[f][roleEncode] {
					pass.Reportf(f.Pos(),
						"snapshot field %s.%s is never written by an encode-side function (%s): snapshots will omit it",
						ss.name, f.Name(), strings.Join(encodeNameHints, "/"))
				}
				if !refs[f][roleDecode] {
					pass.Reportf(f.Pos(),
						"snapshot field %s.%s is never read by a decode-side function (%s): restores will ignore it",
						ss.name, f.Name(), strings.Join(decodeNameHints, "/"))
				}
			}
		}
	}
}

// encodable reports whether t survives a JSON encode/decode round trip.
func encodable(t types.Type, visited map[types.Type]bool) bool {
	if visited[t] {
		return true // assume cycles are fine; the outer layers decide
	}
	visited[t] = true
	if implementsJSONRoundTrip(t) {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		info := u.Info()
		return info&(types.IsBoolean|types.IsInteger|types.IsFloat|types.IsString) != 0
	case *types.Pointer:
		return encodable(u.Elem(), visited)
	case *types.Slice:
		return encodable(u.Elem(), visited)
	case *types.Array:
		return encodable(u.Elem(), visited)
	case *types.Map:
		kb, ok := u.Key().Underlying().(*types.Basic)
		if !ok || kb.Info()&(types.IsString|types.IsInteger) == 0 {
			return false
		}
		return encodable(u.Elem(), visited)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			f := u.Field(i)
			if !f.Exported() || !encodable(f.Type(), visited) {
				return false
			}
		}
		return true
	default:
		// Interfaces, channels, funcs, complex numbers, unsafe pointers.
		return false
	}
}

// implementsJSONRoundTrip reports whether t (or *t) has MarshalJSON and
// UnmarshalJSON methods, i.e. the type manages its own encoding.
func implementsJSONRoundTrip(t types.Type) bool {
	return hasMethod(t, "MarshalJSON") && hasMethod(types.NewPointer(t), "UnmarshalJSON")
}

func hasMethod(t types.Type, name string) bool {
	obj, _, _ := types.LookupFieldOrMethod(t, true, nil, name)
	_, ok := obj.(*types.Func)
	return ok
}
