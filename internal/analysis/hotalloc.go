package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotAlloc flags allocation sources inside hot-path-reachable functions —
// the per-tick simulation loops, the scheduler's ranking path, and the SLO
// evaluation sweep, as declared in hotpath.json and computed by the call
// graph (callgraph.go). Cold code is never flagged: an allocation is only
// a defect where it multiplies by ticks x tasks x servers.
//
// Flagged on the hot path:
//
//  1. &T{...} — a composite literal whose address is taken escapes to the
//     heap;
//  2. slice and map composite literals, make, and new — direct
//     allocations;
//  3. append inside a loop — unbounded growth; preallocate with capacity
//     or reuse a scratch buffer owned by the receiver;
//  4. function literals that capture variables — each build of the closure
//     allocates;
//  5. fmt.* calls — formatting allocates and boxes every argument;
//  6. calls passing arguments to an interface-typed variadic parameter
//     (...any and friends) — the implicit argument slice allocates and
//     each element boxes;
//  7. range over a map — randomized-order, cache-hostile iteration that
//     also blocks the determinism contract; hot loops iterate slices.
//
// Two escape hatches keep intentional slow paths quiet:
//
//   - statements guarded by an Enabled() check (`if tr.Enabled() { ... }`)
//     are trace-only branches and are skipped;
//   - a //quasar:cold directive on a function declares the whole function
//     off the hot loop (with a mandatory justification), and a
//     //lint:allow(hotalloc) annotation suppresses a single finding.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc: "flags heap allocations on the declared hot path: escaping " +
		"composite literals, make/new, append growth in loops, closure " +
		"captures, fmt and interface boxing, and map iteration",
	Run: runHotAlloc,
}

func runHotAlloc(pass *Pass) {
	if pass.Hot == nil {
		return
	}
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !pass.Hot.ContainsDecl(pass.Pkg, fd) {
				continue
			}
			checkHotAlloc(pass, fd)
		}
	}
}

// span is a half-open position range.
type span struct{ from, to token.Pos }

func (s span) contains(p token.Pos) bool { return p >= s.from && p <= s.to }

// coldSpans collects statement ranges that are off the fast path even
// inside a hot function:
//
//   - bodies of if-statements whose condition calls an Enabled() method —
//     the tracer-off fast path never enters them;
//   - bodies of if-statements that end by panicking — a guard clause's
//     allocation (typically building the panic message) happens once,
//     immediately before the program dies.
func coldSpans(fd *ast.FuncDecl) []span {
	var spans []span
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok || (!mentionsEnabledCall(ifs.Cond) && !endsInPanic(ifs.Body)) {
			return true
		}
		spans = append(spans, span{from: ifs.Body.Pos(), to: ifs.Body.End()})
		return true
	})
	return spans
}

// endsInPanic reports whether the block's final statement is a call to the
// panic builtin.
func endsInPanic(block *ast.BlockStmt) bool {
	if len(block.List) == 0 {
		return false
	}
	es, ok := block.List[len(block.List)-1].(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

// mentionsEnabledCall reports whether expr contains a call to a method
// named Enabled.
func mentionsEnabledCall(expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Enabled" {
			found = true
			return false
		}
		return !found
	})
	return found
}

// loopSpans collects the body ranges of for and range statements, for the
// append-growth rule.
func loopSpans(fd *ast.FuncDecl) []span {
	var spans []span
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.ForStmt:
			spans = append(spans, span{from: s.Body.Pos(), to: s.Body.End()})
		case *ast.RangeStmt:
			spans = append(spans, span{from: s.Body.Pos(), to: s.Body.End()})
		}
		return true
	})
	return spans
}

func inSpans(spans []span, p token.Pos) bool {
	for _, s := range spans {
		if s.contains(p) {
			return true
		}
	}
	return false
}

func checkHotAlloc(pass *Pass, fd *ast.FuncDecl) {
	cold := coldSpans(fd)
	loops := loopSpans(fd)
	hot := func(p token.Pos) bool { return !inSpans(cold, p) }

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op != token.AND || !hot(n.Pos()) {
				return true
			}
			if _, ok := n.X.(*ast.CompositeLit); ok {
				pass.Reportf(n.Pos(),
					"&composite literal escapes to the heap on the hot path; reuse a pooled or receiver-owned value instead")
			}
		case *ast.CompositeLit:
			if !hot(n.Pos()) {
				return true
			}
			tv, ok := pass.Pkg.Info.Types[n]
			if !ok || tv.Type == nil {
				return true
			}
			switch tv.Type.Underlying().(type) {
			case *types.Slice:
				pass.Reportf(n.Pos(),
					"slice literal allocates on the hot path; hoist it to a package-level var or a receiver-owned scratch buffer")
			case *types.Map:
				pass.Reportf(n.Pos(),
					"map literal allocates on the hot path; hoist it or reuse a receiver-owned map")
			}
		case *ast.FuncLit:
			if !hot(n.Pos()) {
				return true
			}
			if name, ok := capturesVariable(pass, n); ok {
				pass.Reportf(n.Pos(),
					"closure capturing %s allocates on the hot path; hoist the capture into a receiver field or pass it as a parameter", name)
			}
		case *ast.RangeStmt:
			if !hot(n.Pos()) {
				return true
			}
			if tv, ok := pass.Pkg.Info.Types[n.X]; ok && tv.Type != nil {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					pass.Reportf(n.For,
						"map iteration on the hot path is cache-hostile and randomized; maintain a slice (or sorted key list) alongside the map")
				}
			}
		case *ast.CallExpr:
			if !hot(n.Pos()) {
				return true
			}
			checkHotCall(pass, n, loops)
		}
		return true
	})
}

// checkHotCall applies the call-shaped hotalloc rules: builtins, fmt, and
// interface-variadic boxing.
func checkHotCall(pass *Pass, call *ast.CallExpr, loops []span) {
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := pass.Pkg.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				pass.Reportf(call.Pos(),
					"make allocates on the hot path; preallocate at construction or reuse a receiver-owned buffer")
			case "new":
				pass.Reportf(call.Pos(),
					"new allocates on the hot path; reuse a pooled or receiver-owned value")
			case "append":
				if inSpans(loops, call.Pos()) {
					pass.Reportf(call.Pos(),
						"append inside a loop may grow without bound on the hot path; preallocate with capacity or reuse a scratch buffer")
				}
			}
			return
		}
	}
	if pkgPath, name, ok := pkgFuncCall(pass, call); ok && pkgPath == "fmt" {
		pass.Reportf(call.Pos(),
			"fmt.%s allocates and boxes its arguments on the hot path; precompute the string or move formatting off the tick loop", name)
		return
	}
	// Interface-typed variadic parameters: the call builds an implicit
	// slice and boxes each element. An explicit s... spread reuses the
	// caller's slice and passes.
	tv, ok := pass.Pkg.Info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok || !sig.Variadic() || call.Ellipsis != token.NoPos {
		return
	}
	nFixed := sig.Params().Len() - 1
	if len(call.Args) <= nFixed {
		return
	}
	last := sig.Params().At(nFixed)
	slice, ok := last.Type().Underlying().(*types.Slice)
	if !ok || !types.IsInterface(slice.Elem()) {
		return
	}
	pass.Reportf(call.Pos(),
		"variadic interface arguments allocate a slice and box each element on the hot path; pass a prebuilt slice with ... or restructure the call")
}

// capturesVariable reports whether the function literal captures a local
// variable from an enclosing function scope (package-level state is not a
// capture — referencing it does not force a closure allocation), returning
// the first captured name.
func capturesVariable(pass *Pass, fl *ast.FuncLit) (string, bool) {
	name := ""
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.Pkg.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Pos() >= fl.Pos() && v.Pos() <= fl.End() {
			return true // declared inside the literal
		}
		// Package-level variables live forever; no capture needed.
		if v.Parent() == types.Universe || (v.Pkg() != nil && v.Parent() == v.Pkg().Scope()) {
			return true
		}
		name = v.Name()
		return false
	})
	return name, name != ""
}
