package workload

import (
	"math"

	"quasar/internal/cluster"
	"quasar/internal/perfmodel"
)

// The functions in this file are the single bridge between a workload
// instance and its ground-truth performance: they wrap the genome's
// perfmodel surfaces with the framework-configuration effects. Both the
// simulated runtime (when "measuring" live performance) and the experiment
// oracles go through these, so configured and unconfigured workloads are
// always evaluated consistently.

// taskHeapNeedGB derives the per-task heap requirement of a configured job
// from its genome (memory-hungrier jobs need bigger heaps).
func (w *Instance) taskHeapNeedGB() float64 {
	need := w.Genome.MemNeedGB / 16
	if need < 0.25 {
		need = 0.25
	}
	if need > 2 {
		need = 2
	}
	return need
}

// ioBoundFrac derives the I/O-bound fraction of a configured job from its
// disk sensitivity.
func (w *Instance) ioBoundFrac() float64 {
	return w.Genome.Sens[cluster.ResDiskIO]
}

// NodeRate returns the true work rate of this workload on one server with
// the given allocation and neighbour pressure, applying framework
// configuration effects when present.
func (w *Instance) NodeRate(p *cluster.Platform, alloc cluster.Alloc, pressure cluster.ResVec) float64 {
	if w.Config == nil {
		return w.Genome.NodeRate(p, alloc, pressure)
	}
	eff := w.Config.Effect(w.taskHeapNeedGB(), alloc.Cores, w.ioBoundFrac())
	effAlloc := cluster.Alloc{Cores: eff.EffectiveCores, MemoryGB: alloc.MemoryGB}
	rate := w.Genome.NodeRate(p, effAlloc, pressure) * eff.RateMult
	// The framework's own memory footprint (heaps) competes with the
	// dataset working set already modeled by the genome.
	if alloc.MemoryGB < eff.MemoryGB {
		rate *= math.Pow(alloc.MemoryGB/eff.MemoryGB, 0.7)
	}
	return rate
}

// CausedPressure returns the shared-resource pressure this workload exerts
// at the given allocation, including configuration effects (replication
// multiplies disk writes).
func (w *Instance) CausedPressure(p *cluster.Platform, alloc cluster.Alloc) cluster.ResVec {
	v := w.Genome.CausedPressure(p, alloc)
	if w.Config != nil {
		eff := w.Config.Effect(w.taskHeapNeedGB(), alloc.Cores, w.ioBoundFrac())
		v[cluster.ResDiskIO] *= eff.DiskMult
		if v[cluster.ResDiskIO] > 1 {
			v[cluster.ResDiskIO] = 1
		}
	}
	return v
}

// JobRate aggregates NodeRate over a multi-node allocation with the
// genome's scale-out efficiency.
func (w *Instance) JobRate(nodes []perfmodel.NodeAlloc) float64 {
	sum := 0.0
	for _, n := range nodes {
		sum += w.NodeRate(n.Platform, n.Alloc, n.Pressure)
	}
	return sum * w.Genome.ScaleOutEfficiency(len(nodes))
}

// CompletionTime returns the true execution time of a batch workload on the
// given allocation.
func (w *Instance) CompletionTime(nodes []perfmodel.NodeAlloc) float64 {
	rate := w.JobRate(nodes)
	if rate <= 0 {
		return math.Inf(1)
	}
	return w.Genome.Work / rate
}

// CapacityQPS returns the true saturation throughput of a latency service
// on the given allocation.
func (w *Instance) CapacityQPS(nodes []perfmodel.NodeAlloc) float64 {
	return w.JobRate(nodes) * w.Genome.QPSPerUnit
}

// MeetsQoS reports whether the service meets its latency constraint at
// offered load lambda on the given capacity.
func (w *Instance) MeetsQoS(lambda, capacity float64) bool {
	_, p99 := w.Genome.Latency(lambda, capacity)
	return p99 <= w.Target.LatencyUS && lambda <= capacity
}
