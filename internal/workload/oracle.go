package workload

import (
	"math"

	"quasar/internal/cluster"
	"quasar/internal/perfmodel"
)

// The oracle functions evaluate ground-truth performance over candidate
// allocations on idle machines. They are used only by experiment harnesses
// — to set performance targets (the paper sweeps parameters to find each
// job's best achievable performance) and to score how close a manager's
// decisions come to optimal. The cluster manager itself never calls them.

// oracleNodeCounts is the scale-out sweep grid.
func oracleNodeCounts(maxNodes int) []int {
	grid := []int{1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 100}
	var out []int
	for _, n := range grid {
		if n <= maxNodes {
			out = append(out, n)
		}
	}
	if len(out) == 0 {
		out = []int{1}
	}
	return out
}

// uniformNodes builds an n-node allocation of whole servers of platform p.
func uniformNodes(p *cluster.Platform, n int, alloc cluster.Alloc) []perfmodel.NodeAlloc {
	nodes := make([]perfmodel.NodeAlloc, n)
	for i := range nodes {
		nodes[i] = perfmodel.NodeAlloc{Platform: p, Alloc: alloc}
	}
	return nodes
}

// configCandidates enumerates framework configurations for the oracle
// sweep of configured jobs.
func configCandidates(base *FrameworkConfig, cores int) []*FrameworkConfig {
	if base == nil {
		return []*FrameworkConfig{nil}
	}
	var out []*FrameworkConfig
	for _, mappers := range []int{cores / 2, cores, cores + cores/2} {
		if mappers < 1 {
			continue
		}
		for _, heap := range []float64{0.5, 0.75, 1.0, 1.5} {
			for _, comp := range []Compression{CompressionLZO, CompressionGzip} {
				c := *base
				c.MappersPerNode = mappers
				c.HeapsizeGB = heap
				c.Compression = comp
				out = append(out, &c)
			}
		}
	}
	return out
}

// OracleBestCompletion returns the best achievable completion time of a
// batch workload over platforms, node counts up to maxNodes, whole-node
// allocations, and (for configured jobs) framework parameter settings. It
// also returns the node count that achieved it.
func OracleBestCompletion(w *Instance, platforms []cluster.Platform, maxNodes int) (secs float64, bestNodes int) {
	origCfg := w.Config
	defer func() { w.Config = origCfg }()

	best := math.Inf(1)
	bestNodes = 1
	for pi := range platforms {
		p := &platforms[pi]
		alloc := cluster.Alloc{Cores: p.Cores, MemoryGB: p.MemoryGB}
		for _, cfg := range configCandidates(origCfg, p.Cores) {
			w.Config = cfg
			for _, n := range oracleNodeCounts(maxNodes) {
				t := w.CompletionTime(uniformNodes(p, n, alloc))
				if t < best {
					best = t
					bestNodes = n
				}
			}
		}
	}
	return best, bestNodes
}

// OracleCapacityQPS returns the best achievable saturation throughput of a
// latency service over platforms and node counts up to maxNodes.
func OracleCapacityQPS(w *Instance, platforms []cluster.Platform, maxNodes int) float64 {
	best := 0.0
	for pi := range platforms {
		p := &platforms[pi]
		alloc := cluster.Alloc{Cores: p.Cores, MemoryGB: p.MemoryGB}
		for _, n := range oracleNodeCounts(maxNodes) {
			if c := w.CapacityQPS(uniformNodes(p, n, alloc)); c > best {
				best = c
			}
		}
	}
	return best
}

// OracleBestIPS returns the best single-node rate of a workload over whole
// servers of every platform.
func OracleBestIPS(w *Instance, platforms []cluster.Platform) float64 {
	best := 0.0
	for pi := range platforms {
		p := &platforms[pi]
		r := w.NodeRate(p, cluster.Alloc{Cores: p.Cores, MemoryGB: p.MemoryGB}, cluster.ResVec{})
		if r > best {
			best = r
		}
	}
	return best
}

// OracleBestConfig returns the framework configuration and platform the
// oracle sweep picks for a configured job (what Table 3 reports for Quasar
// on job H8), along with the completion time it achieves on bestNodes
// whole nodes.
func OracleBestConfig(w *Instance, platforms []cluster.Platform, maxNodes int) (FrameworkConfig, string, float64) {
	origCfg := w.Config
	defer func() { w.Config = origCfg }()
	if origCfg == nil {
		return FrameworkConfig{}, "", math.Inf(1)
	}
	best := math.Inf(1)
	var bestCfg FrameworkConfig
	bestPlat := ""
	for pi := range platforms {
		p := &platforms[pi]
		alloc := cluster.Alloc{Cores: p.Cores, MemoryGB: p.MemoryGB}
		for _, cfg := range configCandidates(origCfg, p.Cores) {
			w.Config = cfg
			for _, n := range oracleNodeCounts(maxNodes) {
				t := w.CompletionTime(uniformNodes(p, n, alloc))
				if t < best {
					best = t
					bestCfg = *cfg
					bestPlat = p.Name
				}
			}
		}
	}
	return bestCfg, bestPlat, best
}
