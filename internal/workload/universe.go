package workload

import (
	"fmt"

	"quasar/internal/cluster"
	"quasar/internal/perfmodel"
	"quasar/internal/sim"
)

// Universe generates workload instances against a fixed platform set. It
// holds a pool of families per archetype so repeated submissions of "the
// same application" with different datasets produce related genomes — the
// structure the classification engine learns across arrivals.
type Universe struct {
	Platforms []cluster.Platform

	rng       *sim.RNG
	families  map[string][]*perfmodel.Family
	counter   int
	singleArc []string // archetype names used for single-node workloads
}

// NewUniverse builds a universe with familiesPerArchetype families of every
// archetype, deterministically from seed.
func NewUniverse(platforms []cluster.Platform, seed int64, familiesPerArchetype int) *Universe {
	u := &Universe{
		Platforms: platforms,
		rng:       sim.NewRNG(seed),
		families:  make(map[string][]*perfmodel.Family),
		singleArc: []string{"spec-int", "spec-fp", "parsec", "mining-kernel"},
	}
	for _, arch := range perfmodel.Archetypes() {
		for i := 0; i < familiesPerArchetype; i++ {
			name := fmt.Sprintf("%s-%d", arch.Name, i)
			fam := perfmodel.NewFamily(name, arch, platforms, u.rng.Stream("family/"+name))
			u.families[arch.Name] = append(u.families[arch.Name], fam)
		}
	}
	return u
}

// Families returns the family pool of the named archetype.
func (u *Universe) Families(archetype string) []*perfmodel.Family { return u.families[archetype] }

// Counter returns how many instances this universe has generated. The next
// New call mints ID "<type>-%04d" with ordinal Counter()+1 — which is what
// lets an admission front end promise a workload ID before the deterministic
// apply point actually constructs the instance.
func (u *Universe) Counter() int { return u.counter }

// Spec configures instance generation.
type Spec struct {
	Type Type
	// Family optionally pins the family (index into the archetype pool);
	// -1 picks at random.
	Family int
	// Dataset optionally sets the dataset; zero value picks a random one
	// appropriate for the type.
	Dataset Dataset
	// BestEffort marks the workload as evictable filler with no target.
	BestEffort bool
	// TargetSlack relaxes the auto-derived performance target by this
	// factor (1.0 = the oracle-best performance; 1.2 = 20% looser).
	// Zero means 1.0.
	TargetSlack float64
	// QPS / LatencyUS override the auto-derived latency-service target.
	QPS       float64
	LatencyUS float64
	// MaxNodes bounds the oracle's scale-out sweep when deriving targets.
	MaxNodes int
	// MaxCostPerHour optionally caps the allocation's resource cost.
	MaxCostPerHour float64
}

// pickDataset returns a dataset for the type: one of the Table 1 datasets
// for Hadoop/memcached, or a synthetic one otherwise.
func (u *Universe) pickDataset(t Type, rng *sim.RNG) Dataset {
	switch t {
	case Hadoop:
		ds := HadoopDatasets()
		return ds[rng.Intn(len(ds))]
	case Memcached:
		ds := MemcachedDatasets()
		return ds[rng.Intn(len(ds))]
	default:
		mult := rng.Uniform(0.5, 2.0)
		return Dataset{
			Name:     fmt.Sprintf("synthetic-%.1fx", mult),
			SizeGB:   rng.Uniform(1, 900),
			WorkMult: mult,
			MemMult:  rng.Uniform(0.7, 1.5),
		}
	}
}

// New generates a workload instance.
func (u *Universe) New(spec Spec) *Instance {
	u.counter++
	id := fmt.Sprintf("%s-%04d", spec.Type, u.counter)
	rng := u.rng.Stream("instance/" + id)

	arch := spec.Type.Archetype()
	if spec.Type == SingleNode {
		arch = u.singleArc[rng.Intn(len(u.singleArc))]
	}
	pool := u.families[arch]
	if len(pool) == 0 {
		panic(fmt.Sprintf("workload: no families for archetype %q", arch))
	}
	famIdx := spec.Family
	if famIdx < 0 || famIdx >= len(pool) {
		famIdx = rng.Intn(len(pool))
	}
	fam := pool[famIdx]

	ds := spec.Dataset
	if ds.Name == "" {
		ds = u.pickDataset(spec.Type, rng)
	}
	g := fam.Instantiate(rng.Stream("genome"), ds.WorkMult, ds.MemMult)

	w := &Instance{
		ID:             id,
		Type:           spec.Type,
		Family:         fam.Name,
		Dataset:        ds,
		Genome:         g,
		BestEffort:     spec.BestEffort,
		MaxCostPerHour: spec.MaxCostPerHour,
	}
	if spec.Type == Hadoop || spec.Type == Spark || spec.Type == Storm {
		// All three frameworks expose slot/executor/worker counts and heap
		// sizes; the same knob model covers them.
		cfg := DefaultHadoopConfig()
		w.Config = &cfg
	}
	if !spec.BestEffort {
		w.Target = u.deriveTarget(w, spec)
	}
	return w
}

// deriveTarget computes the instance's performance constraint. Analytics
// and single-node targets are set from an oracle parameter sweep ("targets
// are set to the best performance achieved after a parameter sweep on the
// different server platforms", §6.1), relaxed by TargetSlack. Latency
// targets use the provided QPS/latency or sensible defaults near a mid-size
// allocation's capacity.
func (u *Universe) deriveTarget(w *Instance, spec Spec) Target {
	slack := spec.TargetSlack
	if slack <= 0 {
		slack = 1.0
	}
	maxNodes := spec.MaxNodes
	if maxNodes <= 0 {
		if w.Type.Distributed() {
			maxNodes = 8
		} else {
			maxNodes = 1
		}
	}
	switch w.Type.Class() {
	case perfmodel.Analytics:
		best, _ := OracleBestCompletion(w, u.Platforms, maxNodes)
		return Target{Class: perfmodel.Analytics, CompletionSecs: best * slack}
	case perfmodel.LatencyCritical:
		qps, lat := spec.QPS, spec.LatencyUS
		if lat <= 0 {
			lat = w.Genome.ServiceUS * 4 // knee region of the latency curve
		}
		if qps <= 0 {
			// 60% of the best QPS sustainable *within the latency bound*,
			// so the target is comfortably servable.
			capBest := OracleCapacityQPS(w, u.Platforms, maxNodes)
			qps = 0.6 * w.Genome.QPSAtQoS(capBest, lat)
		}
		return Target{Class: perfmodel.LatencyCritical, QPS: qps, LatencyUS: lat}
	default:
		best := OracleBestIPS(w, u.Platforms)
		return Target{Class: perfmodel.SingleNode, IPS: best / slack}
	}
}
