// Package workload defines the workloads submitted to the cluster manager:
// their type (which analytics framework or service), dataset, performance
// target, framework configuration knobs, and the hidden ground-truth genome
// that the perfmodel evaluates. The manager sees everything here except the
// genome.
package workload

import (
	"fmt"

	"quasar/internal/perfmodel"
)

// Type is the concrete workload kind; it maps onto a perfmodel archetype
// and determines which knobs and constraints apply.
type Type int

const (
	Hadoop Type = iota
	Spark
	Storm
	Memcached
	Cassandra
	Webserver
	SingleNode

	NumTypes
)

var typeNames = [NumTypes]string{
	"hadoop", "spark", "storm", "memcached", "cassandra", "webserver", "single-node",
}

func (t Type) String() string {
	if t < 0 || t >= NumTypes {
		return fmt.Sprintf("type(%d)", int(t))
	}
	return typeNames[t]
}

// Archetype returns the perfmodel archetype name backing this type.
func (t Type) Archetype() string {
	switch t {
	case Hadoop:
		return "hadoop"
	case Spark:
		return "spark"
	case Storm:
		return "storm"
	case Memcached:
		return "memcached"
	case Cassandra:
		return "cassandra"
	case Webserver:
		return "webserver"
	default:
		return "parsec" // single-node default; generator picks among several
	}
}

// Class returns the broad workload class of this type.
func (t Type) Class() perfmodel.Class {
	switch t {
	case Hadoop, Spark, Storm:
		return perfmodel.Analytics
	case Memcached, Cassandra, Webserver:
		return perfmodel.LatencyCritical
	default:
		return perfmodel.SingleNode
	}
}

// Distributed reports whether the workload can scale out to several servers.
func (t Type) Distributed() bool { return t.Class() != perfmodel.SingleNode }

// Stateful reports whether scaling out requires state migration (the paper's
// microshard migration for memcached/Cassandra).
func (t Type) Stateful() bool { return t == Memcached || t == Cassandra }

// Target is the performance constraint of a workload, expressed per class
// exactly as the paper's interface (§3.1): execution time for distributed
// frameworks, QPS + tail latency for latency-critical services, IPS
// (normalized here to work-units/sec) for single-node workloads.
type Target struct {
	Class perfmodel.Class

	// CompletionSecs applies to Analytics workloads.
	CompletionSecs float64

	// QPS and LatencyUS (99th percentile bound, microseconds) apply to
	// LatencyCritical workloads.
	QPS       float64
	LatencyUS float64

	// IPS applies to SingleNode workloads (work units per second).
	IPS float64
}

// Validate checks the target matches its class.
func (t Target) Validate() error {
	switch t.Class {
	case perfmodel.Analytics:
		if t.CompletionSecs <= 0 {
			return fmt.Errorf("workload: analytics target needs CompletionSecs, got %+v", t)
		}
	case perfmodel.LatencyCritical:
		if t.QPS <= 0 || t.LatencyUS <= 0 {
			return fmt.Errorf("workload: latency target needs QPS and LatencyUS, got %+v", t)
		}
	case perfmodel.SingleNode:
		if t.IPS <= 0 {
			return fmt.Errorf("workload: single-node target needs IPS, got %+v", t)
		}
	default:
		return fmt.Errorf("workload: unknown class %v", t.Class)
	}
	return nil
}

// Dataset describes the input data of a workload: its size and how it
// scales the job's work and memory footprint relative to the family base
// (the paper's "dataset impact", up to ~3x).
type Dataset struct {
	Name     string
	SizeGB   float64
	WorkMult float64
	MemMult  float64
}

// HadoopDatasets returns the three Hadoop input datasets of Table 1.
func HadoopDatasets() []Dataset {
	return []Dataset{
		{Name: "netflix", SizeGB: 2.1, WorkMult: 0.6, MemMult: 0.7},
		{Name: "mahout", SizeGB: 10, WorkMult: 1.0, MemMult: 1.0},
		{Name: "wikipedia", SizeGB: 55, WorkMult: 1.9, MemMult: 1.6},
	}
}

// MemcachedDatasets returns the three memcached load mixes of Table 1.
func MemcachedDatasets() []Dataset {
	return []Dataset{
		{Name: "100B-reads", SizeGB: 64, WorkMult: 0.8, MemMult: 0.9},
		{Name: "2KB-reads", SizeGB: 256, WorkMult: 1.3, MemMult: 1.4},
		{Name: "100B-rw", SizeGB: 64, WorkMult: 1.1, MemMult: 1.0},
	}
}

// Instance is one submitted workload.
type Instance struct {
	ID      string
	Type    Type
	Family  string
	Dataset Dataset
	Target  Target

	// BestEffort workloads have no target; they soak up idle resources
	// and may be evicted or killed at any time (paper §5).
	BestEffort bool

	// MaxCostPerHour optionally caps the resource cost of the workload's
	// allocation (the cost-target extension of §4.4); 0 means unlimited.
	MaxCostPerHour float64

	// Config holds framework parameter settings (Hadoop-style knobs);
	// nil for workloads without framework knobs.
	Config *FrameworkConfig

	// Genome is the hidden ground truth. The cluster manager must never
	// read it; it is exercised only through Measure* calls that return
	// noisy observations, and by experiment harnesses computing oracle
	// numbers.
	Genome *perfmodel.Genome
}

// Validate checks instance consistency.
func (w *Instance) Validate() error {
	if w.ID == "" {
		return fmt.Errorf("workload: instance with empty ID")
	}
	if w.Genome == nil {
		return fmt.Errorf("workload %s: nil genome", w.ID)
	}
	if !w.BestEffort {
		if w.Target.Class != w.Type.Class() {
			return fmt.Errorf("workload %s: target class %v does not match type %v",
				w.ID, w.Target.Class, w.Type)
		}
		return w.Target.Validate()
	}
	return nil
}
