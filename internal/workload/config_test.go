package workload

import (
	"math"
	"testing"

	"quasar/internal/cluster"
	"quasar/internal/perfmodel"
)

func TestCompressionRatios(t *testing.T) {
	if CompressionGzip.Ratio() != 7.6 || CompressionLZO.Ratio() != 5.1 || CompressionNone.Ratio() != 1 {
		t.Fatal("compression ratios do not match Table 3")
	}
	for _, c := range []Compression{CompressionNone, CompressionLZO, CompressionGzip} {
		if c.String() == "" {
			t.Fatal("compression missing name")
		}
	}
}

func TestDefaultHadoopConfigMatchesTable3(t *testing.T) {
	c := DefaultHadoopConfig()
	if c.MappersPerNode != 8 || c.HeapsizeGB != 1.0 || c.BlockSizeMB != 64 ||
		c.Replication != 2 || c.Compression != CompressionLZO {
		t.Fatalf("default Hadoop config %+v does not match Table 3 baseline", c)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []FrameworkConfig{
		{MappersPerNode: 0, HeapsizeGB: 1, BlockSizeMB: 64, Replication: 2},
		{MappersPerNode: 8, HeapsizeGB: 0, BlockSizeMB: 64, Replication: 2},
		{MappersPerNode: 8, HeapsizeGB: 1, BlockSizeMB: 0, Replication: 2},
		{MappersPerNode: 8, HeapsizeGB: 1, BlockSizeMB: 64, Replication: 0},
	}
	for i := range bad {
		if err := bad[i].Validate(); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

func TestEffectMapperOversubscription(t *testing.T) {
	c := DefaultHadoopConfig()
	c.MappersPerNode = 16
	eff := c.Effect(0.5, 8, 0.3)
	if eff.EffectiveCores != 8 {
		t.Fatalf("effective cores %d, want capped at 8", eff.EffectiveCores)
	}
	c2 := DefaultHadoopConfig()
	c2.MappersPerNode = 8
	eff2 := c2.Effect(0.5, 8, 0.3)
	if eff.RateMult >= eff2.RateMult {
		t.Fatal("oversubscription should cost throughput")
	}
}

func TestEffectHeapStarvation(t *testing.T) {
	small := DefaultHadoopConfig()
	small.HeapsizeGB = 0.25
	right := DefaultHadoopConfig()
	right.HeapsizeGB = 1.0
	effSmall := small.Effect(1.0, 8, 0.3)
	effRight := right.Effect(1.0, 8, 0.3)
	if effSmall.RateMult >= effRight.RateMult {
		t.Fatal("undersized heap should cost throughput")
	}
	// Oversized heap does not help but wastes memory.
	big := DefaultHadoopConfig()
	big.HeapsizeGB = 4.0
	effBig := big.Effect(1.0, 8, 0.3)
	if effBig.MemoryGB <= effRight.MemoryGB {
		t.Fatal("bigger heap should require more memory")
	}
}

func TestEffectCompressionHelpsIOBound(t *testing.T) {
	gz := DefaultHadoopConfig()
	gz.Compression = CompressionGzip
	none := DefaultHadoopConfig()
	none.Compression = CompressionNone
	// Heavily IO-bound job: gzip should win despite CPU cost.
	if gz.Effect(0.5, 8, 0.8).RateMult <= none.Effect(0.5, 8, 0.8).RateMult {
		t.Fatal("gzip should beat no compression for IO-bound jobs")
	}
	// Pure CPU job: compression is only overhead.
	if gz.Effect(0.5, 8, 0.0).RateMult >= none.Effect(0.5, 8, 0.0).RateMult {
		t.Fatal("gzip should lose for CPU-bound jobs")
	}
}

func TestEffectReplicationDiskPressure(t *testing.T) {
	c := DefaultHadoopConfig()
	c.Replication = 3
	if c.Effect(0.5, 8, 0.3).DiskMult != 3 {
		t.Fatal("replication should multiply disk pressure")
	}
}

func TestEffectBlockSize(t *testing.T) {
	tiny := DefaultHadoopConfig()
	tiny.BlockSizeMB = 16
	huge := DefaultHadoopConfig()
	huge.BlockSizeMB = 1024
	good := DefaultHadoopConfig()
	if tiny.Effect(0.5, 8, 0.3).RateMult >= good.Effect(0.5, 8, 0.3).RateMult {
		t.Fatal("tiny blocks should cost overhead")
	}
	if huge.Effect(0.5, 8, 0.3).RateMult >= good.Effect(0.5, 8, 0.3).RateMult {
		t.Fatal("huge blocks should cost parallelism")
	}
}

func TestNodeRateAppliesConfig(t *testing.T) {
	u := testUniverse()
	w := u.New(Spec{Type: Hadoop, Family: -1, MaxNodes: 2})
	p := &u.Platforms[9] // J
	alloc := cluster.Alloc{Cores: 12, MemoryGB: 24}

	base := w.NodeRate(p, alloc, cluster.ResVec{})
	if base <= 0 {
		t.Fatal("zero rate for configured workload")
	}
	// Starving the framework's heap memory must reduce the rate.
	w.Config.MappersPerNode = 12
	w.Config.HeapsizeGB = 4 // 48 GB needed, only 24 allocated
	starved := w.NodeRate(p, alloc, cluster.ResVec{})
	if starved >= base {
		t.Fatalf("heap starvation did not reduce rate: %v >= %v", starved, base)
	}
}

func TestCausedPressureReplication(t *testing.T) {
	u := testUniverse()
	w := u.New(Spec{Type: Hadoop, Family: -1, MaxNodes: 2})
	p := &u.Platforms[9]
	alloc := cluster.Alloc{Cores: 8, MemoryGB: 16}
	w.Config.Replication = 1
	p1 := w.CausedPressure(p, alloc)
	w.Config.Replication = 3
	p3 := w.CausedPressure(p, alloc)
	if p3[cluster.ResDiskIO] <= p1[cluster.ResDiskIO] && p1[cluster.ResDiskIO] < 1 {
		t.Fatalf("replication did not raise disk pressure: %v vs %v",
			p3[cluster.ResDiskIO], p1[cluster.ResDiskIO])
	}
	for r := 0; r < int(cluster.NumResources); r++ {
		if p3[r] < 0 || p3[r] > 1 {
			t.Fatalf("pressure out of range: %v", p3[r])
		}
	}
}

func TestOracleBestBeatsDefault(t *testing.T) {
	u := testUniverse()
	w := u.New(Spec{Type: Hadoop, Family: -1, MaxNodes: 4})
	// Default config on a mid platform, 4 nodes.
	p := &u.Platforms[4]
	nodes := uniformNodes(p, 4, cluster.Alloc{Cores: p.Cores, MemoryGB: p.MemoryGB})
	defTime := w.CompletionTime(nodes)
	best, _ := OracleBestCompletion(w, u.Platforms, 4)
	if best > defTime {
		t.Fatalf("oracle best %.1f worse than a fixed default %.1f", best, defTime)
	}
}

func TestOracleBestConfigReasonable(t *testing.T) {
	u := testUniverse()
	w := u.New(Spec{Type: Hadoop, Family: -1, MaxNodes: 4})
	cfg, plat, secs := OracleBestConfig(w, u.Platforms, 4)
	if plat == "" || math.IsInf(secs, 0) {
		t.Fatalf("oracle config sweep failed: %v %v", plat, secs)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("oracle picked invalid config: %v", err)
	}
	// Restores the instance's own config.
	if w.Config.MappersPerNode != DefaultHadoopConfig().MappersPerNode {
		t.Fatal("oracle sweep clobbered the instance config")
	}
}

func TestOracleBestIPSPositive(t *testing.T) {
	u := testUniverse()
	w := u.New(Spec{Type: SingleNode, Family: -1})
	if ips := OracleBestIPS(w, u.Platforms); ips <= 0 {
		t.Fatalf("best IPS %v", ips)
	}
}

func TestMeetsQoS(t *testing.T) {
	u := testUniverse()
	w := u.New(Spec{Type: Memcached, Family: -1, MaxNodes: 4})
	cap := OracleCapacityQPS(w, u.Platforms, 4)
	if !w.MeetsQoS(0.1*cap, cap) {
		t.Fatal("light load should meet QoS")
	}
	if w.MeetsQoS(2*cap, cap) {
		t.Fatal("overload should violate QoS")
	}
}

// Scale-out efficiency respected by JobRate for configured workloads.
func TestJobRateScaleOut(t *testing.T) {
	u := testUniverse()
	w := u.New(Spec{Type: Hadoop, Family: -1, MaxNodes: 2})
	w.Genome.Beta = 0.8
	p := &u.Platforms[9]
	al := cluster.Alloc{Cores: p.Cores, MemoryGB: p.MemoryGB}
	r1 := w.JobRate(uniformNodes(p, 1, al))
	r4 := w.JobRate(uniformNodes(p, 4, al))
	want := r1 * 4 * math.Pow(4, -0.2)
	if math.Abs(r4-want)/want > 1e-9 {
		t.Fatalf("JobRate scale-out wrong: %v want %v", r4, want)
	}
}

var _ = perfmodel.Analytics // keep import when test set shrinks
