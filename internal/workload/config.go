package workload

import (
	"fmt"
	"math"
)

// Compression enumerates the codec choices of a Hadoop-style framework.
type Compression int

const (
	CompressionNone Compression = iota
	CompressionLZO
	CompressionGzip
)

func (c Compression) String() string {
	switch c {
	case CompressionNone:
		return "none"
	case CompressionLZO:
		return "lzo"
	case CompressionGzip:
		return "gzip"
	}
	return fmt.Sprintf("compression(%d)", int(c))
}

// Ratio returns the data-volume reduction factor of the codec (Table 3
// reports 7.6 for gzip and 5.1 for lzo on job H8).
func (c Compression) Ratio() float64 {
	switch c {
	case CompressionLZO:
		return 5.1
	case CompressionGzip:
		return 7.6
	default:
		return 1
	}
}

// cpuCost returns the compute overhead factor of the codec.
func (c Compression) cpuCost() float64 {
	switch c {
	case CompressionLZO:
		return 1.04
	case CompressionGzip:
		return 1.10
	default:
		return 1
	}
}

// FrameworkConfig holds the tunable parameters of a Hadoop-style analytics
// framework — the knobs Quasar sets in Table 3. They modulate the ground-
// truth performance: the scale-up classification for analytics workloads
// explores these alongside cores and memory (paper §3.2).
type FrameworkConfig struct {
	MappersPerNode int
	HeapsizeGB     float64
	BlockSizeMB    int
	Replication    int
	Compression    Compression
}

// DefaultHadoopConfig returns the stock Hadoop self-scheduler settings used
// as the baseline in Table 3.
func DefaultHadoopConfig() FrameworkConfig {
	return FrameworkConfig{
		MappersPerNode: 8,
		HeapsizeGB:     1.0,
		BlockSizeMB:    64,
		Replication:    2,
		Compression:    CompressionLZO,
	}
}

// Validate checks the configuration is usable.
func (c *FrameworkConfig) Validate() error {
	switch {
	case c.MappersPerNode <= 0:
		return fmt.Errorf("workload: MappersPerNode %d", c.MappersPerNode)
	case c.HeapsizeGB <= 0:
		return fmt.Errorf("workload: HeapsizeGB %.2f", c.HeapsizeGB)
	case c.BlockSizeMB <= 0:
		return fmt.Errorf("workload: BlockSizeMB %d", c.BlockSizeMB)
	case c.Replication < 1:
		return fmt.Errorf("workload: Replication %d", c.Replication)
	}
	return nil
}

// ConfigEffect is how a framework configuration modulates the ground-truth
// model on one node.
type ConfigEffect struct {
	// RateMult multiplies the node's work rate.
	RateMult float64
	// MemoryGB is the memory the framework needs on the node (heap times
	// mappers plus overhead); an allocation below this starves tasks.
	MemoryGB float64
	// EffectiveCores caps the cores the framework actually exploits.
	EffectiveCores int
	// DiskMult multiplies the caused disk pressure (replication writes).
	DiskMult float64
}

// Effect evaluates the configuration's impact for a job whose tasks have
// the given per-task heap requirement (GB), on a node with allocCores
// allocated cores.
//
// The shape follows Hadoop folklore the paper exploits for job H8:
//   - Mappers beyond the allocated cores thrash; fewer mappers than cores
//     leave cores idle.
//   - Heap below the task's need causes spills (square-root penalty); heap
//     above it is pure memory waste.
//   - Small blocks add per-task scheduling overhead; huge blocks lose
//     parallelism and straggle.
//   - Compression trades CPU for I/O volume: high-ratio codecs win for
//     I/O-bound jobs.
//   - Replication multiplies write traffic.
func (c *FrameworkConfig) Effect(taskHeapNeedGB float64, allocCores int, ioBoundFrac float64) ConfigEffect {
	eff := ConfigEffect{RateMult: 1, DiskMult: 1}

	// Task parallelism.
	eff.EffectiveCores = c.MappersPerNode
	if eff.EffectiveCores > allocCores {
		// Oversubscribed mappers contend; mild penalty per extra mapper.
		over := float64(c.MappersPerNode-allocCores) / float64(allocCores)
		eff.RateMult *= 1 / (1 + 0.25*over)
		eff.EffectiveCores = allocCores
	}

	// Heap sizing.
	if c.HeapsizeGB < taskHeapNeedGB {
		eff.RateMult *= math.Sqrt(c.HeapsizeGB / taskHeapNeedGB)
	}
	eff.MemoryGB = float64(c.MappersPerNode)*c.HeapsizeGB + 0.5

	// Block size: optimum around 64-256 MB.
	switch {
	case c.BlockSizeMB < 32:
		eff.RateMult *= 0.85
	case c.BlockSizeMB > 512:
		eff.RateMult *= 0.90
	}

	// Compression: the I/O-bound fraction of the job speeds up by the
	// codec ratio; the whole job pays the CPU cost.
	ratio := c.Compression.Ratio()
	ioSpeed := 1 / (1 - ioBoundFrac + ioBoundFrac/ratio)
	eff.RateMult *= ioSpeed / c.Compression.cpuCost()

	// Replication.
	eff.DiskMult = float64(c.Replication)

	return eff
}
