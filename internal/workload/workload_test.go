package workload

import (
	"math"
	"strings"
	"testing"

	"quasar/internal/cluster"
	"quasar/internal/perfmodel"
)

func testUniverse() *Universe {
	return NewUniverse(cluster.LocalPlatforms(), 42, 3)
}

func TestTypeProperties(t *testing.T) {
	cases := []struct {
		tp          Type
		class       perfmodel.Class
		distributed bool
		stateful    bool
	}{
		{Hadoop, perfmodel.Analytics, true, false},
		{Spark, perfmodel.Analytics, true, false},
		{Storm, perfmodel.Analytics, true, false},
		{Memcached, perfmodel.LatencyCritical, true, true},
		{Cassandra, perfmodel.LatencyCritical, true, true},
		{Webserver, perfmodel.LatencyCritical, true, false},
		{SingleNode, perfmodel.SingleNode, false, false},
	}
	for _, c := range cases {
		if c.tp.Class() != c.class {
			t.Fatalf("%v class = %v, want %v", c.tp, c.tp.Class(), c.class)
		}
		if c.tp.Distributed() != c.distributed {
			t.Fatalf("%v distributed = %v", c.tp, c.tp.Distributed())
		}
		if c.tp.Stateful() != c.stateful {
			t.Fatalf("%v stateful = %v", c.tp, c.tp.Stateful())
		}
		if c.tp.String() == "" || strings.HasPrefix(c.tp.String(), "type(") {
			t.Fatalf("%d has no name", int(c.tp))
		}
	}
}

func TestTargetValidate(t *testing.T) {
	good := []Target{
		{Class: perfmodel.Analytics, CompletionSecs: 100},
		{Class: perfmodel.LatencyCritical, QPS: 1000, LatencyUS: 200},
		{Class: perfmodel.SingleNode, IPS: 5},
	}
	for _, g := range good {
		if err := g.Validate(); err != nil {
			t.Fatalf("valid target rejected: %v", err)
		}
	}
	bad := []Target{
		{Class: perfmodel.Analytics},
		{Class: perfmodel.LatencyCritical, QPS: 1000},
		{Class: perfmodel.LatencyCritical, LatencyUS: 100},
		{Class: perfmodel.SingleNode},
		{Class: perfmodel.Class(99), IPS: 1},
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Fatalf("bad target %d accepted", i)
		}
	}
}

func TestUniverseGeneratesValidInstances(t *testing.T) {
	u := testUniverse()
	for tp := Type(0); tp < NumTypes; tp++ {
		w := u.New(Spec{Type: tp, Family: -1, MaxNodes: 4})
		if err := w.Validate(); err != nil {
			t.Fatalf("%v instance invalid: %v", tp, err)
		}
		if w.Genome == nil || w.Family == "" || w.Dataset.Name == "" {
			t.Fatalf("%v instance incomplete: %+v", tp, w)
		}
		if (tp == Hadoop || tp == Spark) && w.Config == nil {
			t.Fatalf("%v instance lacks framework config", tp)
		}
	}
}

func TestUniverseUniqueIDs(t *testing.T) {
	u := testUniverse()
	seen := map[string]bool{}
	for i := 0; i < 50; i++ {
		w := u.New(Spec{Type: SingleNode, Family: -1})
		if seen[w.ID] {
			t.Fatalf("duplicate ID %s", w.ID)
		}
		seen[w.ID] = true
	}
}

func TestUniverseDeterministic(t *testing.T) {
	u1, u2 := testUniverse(), testUniverse()
	for i := 0; i < 10; i++ {
		a := u1.New(Spec{Type: Hadoop, Family: -1, MaxNodes: 2})
		b := u2.New(Spec{Type: Hadoop, Family: -1, MaxNodes: 2})
		if a.ID != b.ID || a.Family != b.Family || a.Genome.Work != b.Genome.Work {
			t.Fatalf("universe not deterministic at %d: %v vs %v", i, a, b)
		}
	}
}

func TestBestEffortHasNoTarget(t *testing.T) {
	u := testUniverse()
	w := u.New(Spec{Type: SingleNode, Family: -1, BestEffort: true})
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	if w.Target.IPS != 0 {
		t.Fatal("best-effort workload got a target")
	}
}

func TestAnalyticsTargetAchievable(t *testing.T) {
	u := testUniverse()
	w := u.New(Spec{Type: Hadoop, Family: -1, MaxNodes: 4, TargetSlack: 1.0})
	// The target is the oracle best, so it must be achievable: the oracle
	// itself achieves it.
	best, _ := OracleBestCompletion(w, u.Platforms, 4)
	if math.Abs(best-w.Target.CompletionSecs) > 1e-6 {
		t.Fatalf("target %.1f != oracle best %.1f", w.Target.CompletionSecs, best)
	}
	if best <= 0 || math.IsInf(best, 0) {
		t.Fatalf("oracle best %v not finite", best)
	}
}

func TestTargetSlackLoosens(t *testing.T) {
	u1, u2 := testUniverse(), testUniverse()
	tight := u1.New(Spec{Type: Hadoop, Family: 0, MaxNodes: 2, TargetSlack: 1.0})
	loose := u2.New(Spec{Type: Hadoop, Family: 0, MaxNodes: 2, TargetSlack: 1.5})
	if loose.Target.CompletionSecs <= tight.Target.CompletionSecs {
		t.Fatalf("slack did not loosen target: %.1f vs %.1f",
			loose.Target.CompletionSecs, tight.Target.CompletionSecs)
	}
}

func TestLatencyTargetDefaults(t *testing.T) {
	u := testUniverse()
	w := u.New(Spec{Type: Memcached, Family: -1, MaxNodes: 4})
	if w.Target.QPS <= 0 || w.Target.LatencyUS <= 0 {
		t.Fatalf("latency target incomplete: %+v", w.Target)
	}
	// The default QPS (60% of best capacity) must be servable within
	// the latency constraint at the oracle's best allocation.
	cap := OracleCapacityQPS(w, u.Platforms, 4)
	if w.Target.QPS > cap {
		t.Fatalf("target QPS %.0f exceeds best capacity %.0f", w.Target.QPS, cap)
	}
}

func TestLatencyTargetOverride(t *testing.T) {
	u := testUniverse()
	w := u.New(Spec{Type: Webserver, Family: -1, QPS: 123, LatencyUS: 100000})
	if w.Target.QPS != 123 || w.Target.LatencyUS != 100000 {
		t.Fatalf("override ignored: %+v", w.Target)
	}
}

func TestInstanceValidateCatchesMismatch(t *testing.T) {
	u := testUniverse()
	w := u.New(Spec{Type: Hadoop, Family: -1, MaxNodes: 2})
	w.Target.Class = perfmodel.LatencyCritical
	if err := w.Validate(); err == nil {
		t.Fatal("class mismatch accepted")
	}
	w2 := u.New(Spec{Type: Hadoop, Family: -1, MaxNodes: 2})
	w2.Genome = nil
	if err := w2.Validate(); err == nil {
		t.Fatal("nil genome accepted")
	}
}

func TestDatasetTables(t *testing.T) {
	h := HadoopDatasets()
	if len(h) != 3 || h[0].Name != "netflix" || h[0].SizeGB != 2.1 {
		t.Fatalf("hadoop datasets wrong: %+v", h)
	}
	m := MemcachedDatasets()
	if len(m) != 3 {
		t.Fatalf("memcached datasets wrong: %+v", m)
	}
}

func TestPinnedFamilyAndDataset(t *testing.T) {
	u := testUniverse()
	ds := HadoopDatasets()[2]
	w1 := u.New(Spec{Type: Hadoop, Family: 1, Dataset: ds, MaxNodes: 2})
	w2 := u.New(Spec{Type: Hadoop, Family: 1, Dataset: ds, MaxNodes: 2})
	if w1.Family != w2.Family {
		t.Fatalf("pinned family differs: %s vs %s", w1.Family, w2.Family)
	}
	if w1.Dataset.Name != "wikipedia" {
		t.Fatalf("pinned dataset ignored: %s", w1.Dataset.Name)
	}
	// Same family, same dataset: genomes similar but not identical.
	if w1.Genome.Work == w2.Genome.Work {
		t.Fatal("instances should carry instance-level noise")
	}
}
