// Package cluster models a datacenter of heterogeneous servers: platforms,
// per-server resource accounting, workload placements, and the shared-
// resource pressure bookkeeping that drives interference between colocated
// workloads.
package cluster

import "fmt"

// Resource enumerates the shared resources in which colocated workloads
// interfere. They correspond to the iBench-style contention sources of the
// paper's Table 1 (interference patterns B–I) plus memory bandwidth, which
// the paper's text lists among the classified resources.
type Resource int

const (
	ResCPU Resource = iota
	ResL1I
	ResL2
	ResLLC
	ResMemBW
	ResMemCap
	ResPrefetch
	ResDiskIO
	ResNetBW

	// NumResources is the number of interference resources.
	NumResources
)

var resourceNames = [NumResources]string{
	"cpu", "l1i", "l2", "llc", "membw", "memcap", "prefetch", "disk", "net",
}

// String returns the short resource name.
func (r Resource) String() string {
	if r < 0 || r >= NumResources {
		return fmt.Sprintf("resource(%d)", int(r))
	}
	return resourceNames[r]
}

// ParseResource maps a short name back to a Resource.
func ParseResource(s string) (Resource, error) {
	for i, n := range resourceNames {
		if n == s {
			return Resource(i), nil
		}
	}
	return 0, fmt.Errorf("cluster: unknown resource %q", s)
}

// ResVec holds one value per interference resource, e.g. a sensitivity
// profile or the pressure currently present on a server.
type ResVec [NumResources]float64

// Add returns the element-wise sum v+w.
func (v ResVec) Add(w ResVec) ResVec {
	for i := range v {
		v[i] += w[i]
	}
	return v
}

// Sub returns the element-wise difference v-w, clamped at zero: pressure
// bookkeeping must never go negative due to floating-point residue.
func (v ResVec) Sub(w ResVec) ResVec {
	for i := range v {
		v[i] -= w[i]
		if v[i] < 0 {
			v[i] = 0
		}
	}
	return v
}

// Scale returns v with every element multiplied by k.
func (v ResVec) Scale(k float64) ResVec {
	for i := range v {
		v[i] *= k
	}
	return v
}

// Max returns the largest element.
func (v ResVec) Max() float64 {
	m := v[0]
	for _, x := range v[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Dot returns the inner product of v and w.
func (v ResVec) Dot(w ResVec) float64 {
	s := 0.0
	for i := range v {
		s += v[i] * w[i]
	}
	return s
}
