package cluster

import "fmt"

// This file implements the cluster's free-resource index: per-platform
// bucket lists of schedulable servers keyed by free-after-eviction core
// count, plus a separate "pristine" list of completely empty servers. The
// index is maintained incrementally — every mutation that can change a
// server's schedulability or free capacity (place, remove, resize, fault
// state, probe/degrade/isolation changes) reclassifies just that server —
// so the scheduler's ranking fast path never scans the full server list.
//
// Pristine servers (no placements, no injected pressure of any kind) are
// special because their ranking inputs are bit-identical across a platform:
// the scheduler computes one candidate per platform and stamps it onto every
// pristine member. The classification is deliberately structural (exact-zero
// checks) so any floating-point residue left by place/remove cycles demotes
// a server to the ordinary per-server path instead of risking a quality
// value that differs in the last bit from a full recomputation.

// server index classification states.
const (
	ixNone     int8 = iota // not indexed: unschedulable or no usable capacity
	ixOccupied             // in a free-core bucket: has capacity, not pristine
	ixPristine             // in the pristine list: completely empty
)

// pindex is one platform's slice of the index.
type pindex struct {
	// buckets[b] holds the occupiable servers whose free-after-eviction
	// core count is exactly b (1..Cores). Membership order is maintenance
	// order (swap-remove), which is deterministic for a deterministic
	// mutation sequence; consumers re-sort by a total order anyway.
	buckets [][]*Server
	// pristine holds the schedulable servers with nothing on them at all.
	pristine []*Server
}

// FreeIndex is the cluster-wide free-resource index. It is built by New and
// kept current by the server mutators; standalone servers (built directly
// with NewServer) have no index and fall back to on-demand recomputation.
type FreeIndex struct {
	c     *Cluster
	plats []pindex
}

func newFreeIndex(c *Cluster) *FreeIndex {
	ix := &FreeIndex{c: c, plats: make([]pindex, len(c.Platforms))}
	for i := range ix.plats {
		ix.plats[i].buckets = make([][]*Server, c.Platforms[i].Cores+1)
	}
	for _, s := range c.Servers {
		ix.update(s)
	}
	return ix
}

// Idx returns the cluster's free-resource index (nil only for a zero-value
// Cluster not built through New).
func (c *Cluster) Idx() *FreeIndex { return c.index }

// update reclassifies one server after a state change: detach from its
// current list, recompute eligibility and cached capacity, reattach.
func (ix *FreeIndex) update(s *Server) {
	ix.detach(s)
	if !s.Schedulable() {
		return
	}
	s.recomputeEv()
	if s.evCores < 1 || s.evMemGB <= 0 {
		return
	}
	p := &ix.plats[s.pidx]
	if s.isPristine() {
		s.ixKind, s.ixPos = ixPristine, len(p.pristine)
		p.pristine = append(p.pristine, s)
		return
	}
	band := s.evCores
	if band >= len(p.buckets) {
		// Defensive clamp; evCores never exceeds the platform core count.
		band = len(p.buckets) - 1
	}
	s.ixKind, s.ixBand, s.ixPos = ixOccupied, band, len(p.buckets[band])
	p.buckets[band] = append(p.buckets[band], s)
}

// detach removes the server from whichever list currently holds it, using
// swap-remove so membership changes are O(1).
func (ix *FreeIndex) detach(s *Server) {
	switch s.ixKind {
	case ixPristine:
		p := &ix.plats[s.pidx]
		swapRemove(&p.pristine, s.ixPos)
	case ixOccupied:
		p := &ix.plats[s.pidx]
		swapRemove(&p.buckets[s.ixBand], s.ixPos)
	}
	s.ixKind = ixNone
}

// swapRemove deletes list[i] by moving the tail element into its slot,
// updating the moved server's position.
func swapRemove(list *[]*Server, i int) {
	l := *list
	last := len(l) - 1
	l[i] = l[last]
	l[i].ixPos = i
	l[last] = nil
	*list = l[:last]
}

// AppendPristine appends platform pidx's pristine servers to dst and returns
// it. The caller owns dst; the index's internal lists are never exposed.
func (ix *FreeIndex) AppendPristine(pidx int, dst []*Server) []*Server {
	return append(dst, ix.plats[pidx].pristine...)
}

// AppendOccupiable appends platform pidx's occupiable (non-pristine, free
// capacity after eviction) servers to dst, bucket by bucket from most free
// cores down, and returns it.
func (ix *FreeIndex) AppendOccupiable(pidx int, dst []*Server) []*Server {
	b := ix.plats[pidx].buckets
	for band := len(b) - 1; band >= 1; band-- {
		//lint:allow(hotalloc) appends into the caller's reusable scratch slice; capacity is retained across Schedule calls
		dst = append(dst, b[band]...)
	}
	return dst
}

// NumPristine reports the pristine-server count of platform pidx.
func (ix *FreeIndex) NumPristine(pidx int) int { return len(ix.plats[pidx].pristine) }

// NumOccupiable reports the occupiable-server count of platform pidx.
func (ix *FreeIndex) NumOccupiable(pidx int) int {
	n := 0
	for _, b := range ix.plats[pidx].buckets {
		n += len(b)
	}
	return n
}

// reindex pushes this server's state change into the owning cluster's index.
// Standalone servers have no cluster and skip silently.
func (s *Server) reindex() {
	if s.cl != nil && s.cl.index != nil {
		s.cl.index.update(s)
	}
}

// recomputeEv refreshes the cached free-after-eviction capacity and the
// evictable (best-effort) placement list. The accumulation order — free
// memory first, then best-effort allocations in workload-ID order — is
// exactly the scheduler's full-scan expression, so the cached float is
// bit-identical to an on-demand recomputation.
func (s *Server) recomputeEv() {
	cores, mem := s.FreeCores(), s.FreeMemGB()
	be := s.beList[:0]
	for _, pl := range s.order {
		if pl.BestEffort {
			cores += pl.Alloc.Cores
			mem += pl.Alloc.MemoryGB
			//lint:allow(hotalloc) evictable cache growth: reaches the server's best-effort peak once, then reused
			be = append(be, pl)
		}
	}
	s.evCores, s.evMemGB, s.beList = cores, mem, be
}

// isPristine reports whether the server is completely empty: nothing placed,
// no residual accounting, no injected pressure, no partitioning config. The
// checks are exact on purpose — see the file comment.
func (s *Server) isPristine() bool {
	return len(s.placements) == 0 && s.usedCores == 0 &&
		s.usedMemGB == 0 && //lint:allow(floatcmp) structural exact-zero: residue demotes to the per-server path, never misclassifies
		s.pressure == (ResVec{}) && s.probe == (ResVec{}) &&
		s.degrade == (ResVec{}) && s.isolation == (ResVec{})
}

// FreeAfterEviction returns the capacity available counting best-effort
// residents as removable, plus those residents in workload-ID order. Indexed
// servers answer from the cache maintained on every mutation; standalone
// servers recompute. The returned slice is the server's cache — callers must
// not mutate it, and it is valid until the next mutation of this server.
func (s *Server) FreeAfterEviction() (cores int, mem float64, evictable []*Placement) {
	if s.ixKind != ixNone {
		return s.evCores, s.evMemGB, s.beList
	}
	s.recomputeEv()
	return s.evCores, s.evMemGB, s.beList
}

// Validate cross-checks every index entry against a from-scratch recompute
// of the server's classification: membership, bucket band, position
// bookkeeping, cached capacity, and the absence of duplicates. It is a full
// scan — test and debugging use only.
func (ix *FreeIndex) Validate() error {
	seen := make(map[int]int8)
	for pidx := range ix.plats {
		p := &ix.plats[pidx]
		for pos, s := range p.pristine {
			if err := ix.checkEntry(s, pidx, ixPristine, 0, pos, seen); err != nil {
				return err
			}
		}
		for band, b := range p.buckets {
			for pos, s := range b {
				if err := ix.checkEntry(s, pidx, ixOccupied, band, pos, seen); err != nil {
					return err
				}
			}
		}
	}
	for _, s := range ix.c.Servers {
		wantKind, wantBand := ixNone, 0
		cores, mem, _ := recomputeFree(s)
		if s.Schedulable() && cores >= 1 && mem > 0 {
			if s.isPristine() {
				wantKind = ixPristine
			} else {
				wantKind, wantBand = ixOccupied, cores
			}
		}
		gotKind, ok := seen[s.ID]
		if !ok {
			gotKind = ixNone
		}
		if gotKind != wantKind {
			return fmt.Errorf("index: server %d classified %d, recompute says %d", s.ID, gotKind, wantKind)
		}
		if wantKind == ixOccupied && s.ixBand != wantBand {
			return fmt.Errorf("index: server %d in band %d, recompute says %d", s.ID, s.ixBand, wantBand)
		}
		if wantKind != ixNone {
			wc, wm, _ := recomputeFree(s)
			if s.evCores != wc || s.evMemGB != wm { //lint:allow(floatcmp) cache must be bit-identical to recompute
				return fmt.Errorf("index: server %d cached ev (%d, %v), recompute (%d, %v)",
					s.ID, s.evCores, s.evMemGB, wc, wm)
			}
		}
	}
	return nil
}

func (ix *FreeIndex) checkEntry(s *Server, pidx int, kind int8, band, pos int, seen map[int]int8) error {
	if _, dup := seen[s.ID]; dup {
		return fmt.Errorf("index: server %d appears twice", s.ID)
	}
	seen[s.ID] = kind
	if s.pidx != pidx {
		return fmt.Errorf("index: server %d filed under platform %d, has pidx %d", s.ID, pidx, s.pidx)
	}
	if s.ixKind != kind {
		return fmt.Errorf("index: server %d listed as kind %d, marked %d", s.ID, kind, s.ixKind)
	}
	if kind == ixOccupied && s.ixBand != band {
		return fmt.Errorf("index: server %d listed in band %d, marked %d", s.ID, band, s.ixBand)
	}
	if s.ixPos != pos {
		return fmt.Errorf("index: server %d at position %d, marked %d", s.ID, pos, s.ixPos)
	}
	return nil
}

// recomputeFree is the oracle expression for free-after-eviction capacity,
// kept separate from the cache so Validate compares two independent paths.
func recomputeFree(s *Server) (cores int, mem float64, evictable []*Placement) {
	cores, mem = s.FreeCores(), s.FreeMemGB()
	for _, pl := range s.order {
		if pl.BestEffort {
			cores += pl.Alloc.Cores
			mem += pl.Alloc.MemoryGB
			evictable = append(evictable, pl)
		}
	}
	return cores, mem, evictable
}
