package cluster

import (
	"fmt"
	"testing"

	"quasar/internal/sim"
)

// TestIndexInvariantsRandomized drives a cluster through a long randomized
// mutation sequence — place, remove, resize, crash/restart, partition,
// probe/degrade/isolation churn, detector flaps — and revalidates the whole
// free-resource index after every single mutation: bucket membership and
// band must equal a from-scratch recompute of each server's classification,
// positions must be consistent, no server may appear twice, and the cached
// free-after-eviction capacity must be bit-identical to the oracle
// expression.
func TestIndexInvariantsRandomized(t *testing.T) {
	ops := 10000
	streams := 3
	if testing.Short() {
		ops, streams = 1500, 2
	}
	subs := sim.NewRNG(20260808).Substreams("cluster-index", streams)
	for si, rng := range subs {
		t.Run(fmt.Sprintf("substream-%d", si), func(t *testing.T) {
			c, err := New(LocalPlatforms(), []int{3, 3, 3, 3, 3, 3, 3, 3, 3, 3})
			if err != nil {
				t.Fatal(err)
			}
			if err := c.Idx().Validate(); err != nil {
				t.Fatalf("fresh cluster: %v", err)
			}
			nextWL := 0
			placed := []string{} // workload -> exists somewhere
			where := map[string]*Server{}
			vec := func() ResVec {
				var v ResVec
				for r := range v {
					if rng.Bool(0.4) {
						v[r] = rng.Uniform(0, 0.8)
					}
				}
				return v
			}
			for op := 0; op < ops; op++ {
				srv := c.Servers[rng.Intn(len(c.Servers))]
				switch k := rng.Intn(100); {
				case k < 35: // place a new workload (sometimes best-effort)
					id := fmt.Sprintf("wl-%d", nextWL)
					alloc := Alloc{
						Cores:    1 + rng.Intn(srv.Platform.Cores),
						MemoryGB: rng.Uniform(0.5, srv.Platform.MemoryGB),
					}
					if _, err := srv.Place(id, alloc, vec(), rng.Bool(0.4)); err == nil {
						nextWL++
						placed = append(placed, id)
						where[id] = srv
					}
				case k < 55: // remove a random placed workload
					if len(placed) == 0 {
						continue
					}
					i := rng.Intn(len(placed))
					id := placed[i]
					if err := where[id].Remove(id); err != nil {
						t.Fatalf("op %d: remove %s: %v", op, id, err)
					}
					placed[i] = placed[len(placed)-1]
					placed = placed[:len(placed)-1]
					delete(where, id)
				case k < 65: // resize a random placed workload
					if len(placed) == 0 {
						continue
					}
					id := placed[rng.Intn(len(placed))]
					s := where[id]
					alloc := Alloc{
						Cores:    1 + rng.Intn(s.Platform.Cores),
						MemoryGB: rng.Uniform(0.5, s.Platform.MemoryGB),
					}
					_ = s.Resize(id, alloc, vec()) // may fail for capacity; state must stay valid either way
				case k < 72: // crash / restart
					if srv.Up() {
						srv.SetDown()
						// The manager's belief catches up: residents stay in
						// the books (stale placements), mirroring production.
					} else {
						srv.SetUp()
					}
				case k < 79: // partition flap
					srv.SetPartitioned(!srv.Partitioned())
				case k < 86: // detector flap
					srv.SetDet(DetectorState(rng.Intn(3)))
				case k < 91: // probe churn
					if rng.Bool(0.5) {
						srv.SetProbe(vec())
					} else {
						srv.SetProbe(ResVec{})
					}
				case k < 96: // degradation churn
					if rng.Bool(0.5) {
						srv.SetDegrade(vec())
					} else {
						srv.SetDegrade(ResVec{})
					}
				default: // isolation churn
					if rng.Bool(0.5) {
						srv.SetIsolation(vec())
					} else {
						srv.SetIsolation(ResVec{})
					}
				}
				if err := c.Idx().Validate(); err != nil {
					t.Fatalf("substream %d, op %d: %v", si, op, err)
				}
			}
		})
	}
}

// TestIndexPristineLifecycle checks the pristine fast-path classification
// directly: a fresh server is pristine, any placement or injected state
// demotes it, and returning to exactly-empty restores it.
func TestIndexPristineLifecycle(t *testing.T) {
	c, err := New(LocalPlatforms()[:1], []int{2})
	if err != nil {
		t.Fatal(err)
	}
	ix := c.Idx()
	if got := ix.NumPristine(0); got != 2 {
		t.Fatalf("fresh cluster: %d pristine, want 2", got)
	}
	s := c.Servers[0]
	if _, err := s.Place("a", Alloc{Cores: 1, MemoryGB: 1}, ResVec{}, false); err != nil {
		t.Fatal(err)
	}
	if got := ix.NumPristine(0); got != 1 {
		t.Fatalf("after place: %d pristine, want 1", got)
	}
	if got := ix.NumOccupiable(0); got != 1 {
		t.Fatalf("after place: %d occupiable, want 1", got)
	}
	if err := s.Remove("a"); err != nil {
		t.Fatal(err)
	}
	if got := ix.NumPristine(0); got != 2 {
		t.Fatalf("after remove: %d pristine, want 2 (zero caused pressure leaves no residue)", got)
	}
	s.SetProbe(ResVec{0: 0.5})
	if got := ix.NumPristine(0); got != 1 {
		t.Fatalf("after probe: %d pristine, want 1", got)
	}
	s.SetProbe(ResVec{})
	if got := ix.NumPristine(0); got != 2 {
		t.Fatalf("after probe cleared: %d pristine, want 2", got)
	}
	s.SetDet(DetSuspect)
	if got := ix.NumPristine(0) + ix.NumOccupiable(0); got != 1 {
		t.Fatalf("suspect server still indexed: %d members, want 1", got)
	}
	s.SetDet(DetOK)
	if got := ix.NumPristine(0); got != 2 {
		t.Fatalf("after detector recovery: %d pristine, want 2", got)
	}
	if err := ix.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestStandaloneServerNoIndex ensures servers built outside a cluster stay
// fully functional with no index: mutators are no-ops on the (absent) index
// and FreeAfterEviction recomputes on demand.
func TestStandaloneServerNoIndex(t *testing.T) {
	p := LocalPlatforms()[0]
	s := NewServer(7, &p)
	if _, err := s.Place("a", Alloc{Cores: 1, MemoryGB: 1}, ResVec{}, true); err != nil {
		t.Fatal(err)
	}
	s.SetDet(DetSuspect)
	s.SetDet(DetOK)
	cores, mem, ev := s.FreeAfterEviction()
	if cores != p.Cores || mem != p.MemoryGB || len(ev) != 1 {
		t.Fatalf("standalone FreeAfterEviction = (%d, %v, %d evictable), want (%d, %v, 1)",
			cores, mem, len(ev), p.Cores, p.MemoryGB)
	}
}
