package cluster

import "testing"

func healthFixture(t *testing.T) *Cluster {
	t.Helper()
	cl, err := New(LocalPlatforms(), []int{1, 1, 1, 1, 1, 1, 1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

func TestServerHealthStates(t *testing.T) {
	cl := healthFixture(t)
	s := cl.Servers[0]
	if !s.Up() || !s.Reachable() || !s.Schedulable() || s.Det() != DetOK {
		t.Fatal("fresh server is not healthy")
	}

	// Crash: down, unreachable, unschedulable; utilization reads as idle.
	if _, err := s.Place("w", Alloc{Cores: 1, MemoryGB: 1}, ResVec{}, false); err != nil {
		t.Fatal(err)
	}
	s.SetDown()
	if s.Up() || s.Reachable() || s.Schedulable() {
		t.Fatal("down server still reachable/schedulable")
	}
	if s.Fits(Alloc{Cores: 1, MemoryGB: 1}) {
		t.Fatal("down server accepts placements")
	}
	if _, err := s.Place("w2", Alloc{Cores: 1, MemoryGB: 1}, ResVec{}, false); err == nil {
		t.Fatal("Place on a down server succeeded")
	}
	if err := s.Resize("w", Alloc{Cores: 2, MemoryGB: 1}, ResVec{}); err == nil {
		t.Fatal("Resize on a down server succeeded")
	}
	if s.CPUUtilization() != 0 || s.MemUtilization() != 0 {
		t.Fatal("down server reports utilization")
	}
	// Placements survive the crash until something fences them.
	if s.NumPlacements() != 1 {
		t.Fatalf("crash dropped placements: %d", s.NumPlacements())
	}

	// Restart rejoins clean and healthy.
	s.SetUp()
	if !s.Up() || !s.Reachable() {
		t.Fatal("SetUp did not restore the server")
	}

	// Partition: up but unreachable.
	s.SetPartitioned(true)
	if !s.Up() || s.Reachable() || s.Schedulable() {
		t.Fatal("partitioned server should be up but unreachable")
	}
	s.SetPartitioned(false)
	if !s.Reachable() {
		t.Fatal("heal did not restore reachability")
	}

	// Detector belief alone blocks scheduling without touching reachability.
	s.SetDet(DetSuspect)
	if !s.Reachable() || s.Schedulable() {
		t.Fatal("suspect server should be reachable but unschedulable")
	}
	s.SetDet(DetOK)
	if !s.Schedulable() {
		t.Fatal("cleared server should be schedulable")
	}
}

func TestSetDownClearsFaultOverlays(t *testing.T) {
	cl := healthFixture(t)
	s := cl.Servers[1]
	var v ResVec
	v[ResCPU] = 0.6
	s.SetDegrade(v)
	s.SetPartitioned(true)
	s.SetDown()
	if s.Degraded() || s.Partitioned() {
		t.Fatal("crash should wipe slowdown and partition state")
	}
}

func TestDegradePressureFoldsIn(t *testing.T) {
	cl := healthFixture(t)
	s := cl.Servers[2]
	base := s.PressureOn("w")
	var v ResVec
	v[ResCPU], v[ResLLC] = 0.5, 0.5
	s.SetDegrade(v)
	if !s.Degraded() {
		t.Fatal("Degraded() false after SetDegrade")
	}
	p := s.PressureOn("w")
	if p[ResCPU] != base[ResCPU]+0.5 || p[ResLLC] != base[ResLLC]+0.5 {
		t.Fatalf("degrade not folded into pressure: base %v now %v", base, p)
	}
	s.SetDegrade(ResVec{})
	if s.Degraded() {
		t.Fatal("Degraded() true after clearing")
	}
}

func TestLiveCapacityAccounting(t *testing.T) {
	cl := healthFixture(t)
	total := cl.TotalCores()
	if cl.NumLive() != len(cl.Servers) || cl.LiveCores() != total {
		t.Fatalf("healthy cluster: live %d/%d cores %d/%d",
			cl.NumLive(), len(cl.Servers), cl.LiveCores(), total)
	}
	if cl.LiveFreeCores() != cl.FreeCores() {
		t.Fatalf("live free %d != free %d on healthy cluster", cl.LiveFreeCores(), cl.FreeCores())
	}

	dead := cl.Servers[0]
	suspect := cl.Servers[1]
	dead.SetDown()
	suspect.SetDet(DetSuspect)
	wantLive := len(cl.Servers) - 2
	if cl.NumLive() != wantLive {
		t.Fatalf("NumLive = %d, want %d (down + suspect excluded)", cl.NumLive(), wantLive)
	}
	wantCores := total - dead.Platform.Cores - suspect.Platform.Cores
	if cl.LiveCores() != wantCores {
		t.Fatalf("LiveCores = %d, want %d", cl.LiveCores(), wantCores)
	}
	wantMem := cl.TotalMemGB() - dead.Platform.MemoryGB - suspect.Platform.MemoryGB
	if cl.LiveMemGB() != wantMem {
		t.Fatalf("LiveMemGB = %g, want %g", cl.LiveMemGB(), wantMem)
	}
}
