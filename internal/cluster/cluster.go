package cluster

import (
	"fmt"
)

// Alloc is the per-server share of an allocation: a number of cores and an
// amount of memory on one server.
type Alloc struct {
	Cores    int
	MemoryGB float64
}

// Valid reports whether the allocation requests a positive amount of both
// resources.
func (a Alloc) Valid() bool { return a.Cores > 0 && a.MemoryGB > 0 }

// Placement records that a workload occupies an Alloc on a Server.
//
// Caused is the shared-resource pressure this workload exerts at this
// allocation; it feeds the interference penalty of everything colocated.
// ActiveCores and ActiveMemGB are the *actually used* resources as opposed
// to the allocated ones; the workload model refreshes them each tick, and
// utilization figures (Fig. 1, 7, 10, 11) are computed from them.
type Placement struct {
	WorkloadID string
	Server     *Server
	Alloc      Alloc
	Caused     ResVec
	BestEffort bool

	ActiveCores float64
	ActiveMemGB float64
	ActiveDisk  float64 // fraction of server disk bandwidth in use
}

// DetectorState is a failure detector's belief about a server. It lives on
// the server so the scheduler and managers share one view; the runtime's
// heartbeat detector is the only writer.
type DetectorState int

const (
	// DetOK: heartbeats arriving normally.
	DetOK DetectorState = iota
	// DetSuspect: some heartbeats missed; do not place new work here.
	DetSuspect
	// DetDead: declared failed; residents have been (or are being) fenced
	// and displaced.
	DetDead
)

func (d DetectorState) String() string {
	switch d {
	case DetOK:
		return "ok"
	case DetSuspect:
		return "suspect"
	case DetDead:
		return "dead"
	}
	return fmt.Sprintf("det(%d)", int(d))
}

// Server is one machine of the cluster: a platform instance plus the
// bookkeeping of everything placed on it.
type Server struct {
	ID       int
	Platform *Platform

	// Zone is the fault domain (rack/PDU) the server belongs to. The
	// scheduler can spread a workload's nodes across zones (§4.4: "our
	// current resource assignment does not account for fault zones;
	// however, this is a straightforward extension").
	Zone int

	usedCores  int
	usedMemGB  float64
	placements map[string]*Placement
	// order mirrors placements sorted by workload ID, maintained on
	// Place/Remove, so the per-decision sweeps over residents iterate
	// deterministically without sorting or allocating.
	order     []*Placement
	pressure  ResVec // sum of residents' Caused vectors
	probe     ResVec // injected microbenchmark pressure (iBench-style)
	isolation ResVec // fraction of cross-workload pressure removed per resource

	// Fault state. down and partitioned are physical ground truth (set by
	// fault injection through the runtime); degrade is extra interference
	// pressure modeling a transient slowdown (thermal throttling, a failing
	// disk, a noisy co-tenant below the virtualization line); det is the
	// failure detector's belief, which lags the physical truth by the
	// missed-heartbeat window.
	down        bool
	partitioned bool
	degrade     ResVec
	det         DetectorState

	// Free-resource index state (see index.go). cl/pidx tie the server to
	// its owning cluster's index; standalone servers leave cl nil. The ev*
	// fields cache free-after-eviction capacity, recomputed on every
	// mutation with the same accumulation order as the scheduler's full
	// scan so the cache is bit-identical to a recompute.
	cl      *Cluster
	pidx    int
	ixKind  int8
	ixBand  int
	ixPos   int
	evCores int
	evMemGB float64
	beList  []*Placement
}

// NewServer returns an empty server of the given platform.
func NewServer(id int, p *Platform) *Server {
	return &Server{ID: id, Platform: p, placements: make(map[string]*Placement)}
}

// FreeCores returns the number of unallocated cores.
func (s *Server) FreeCores() int { return s.Platform.Cores - s.usedCores }

// FreeMemGB returns the unallocated memory.
func (s *Server) FreeMemGB() float64 { return s.Platform.MemoryGB - s.usedMemGB }

// UsedCores returns the number of allocated cores.
func (s *Server) UsedCores() int { return s.usedCores }

// UsedMemGB returns the allocated memory.
func (s *Server) UsedMemGB() float64 { return s.usedMemGB }

// Fits reports whether alloc can be placed on the server right now. A server
// that is down or partitioned cannot take new work.
func (s *Server) Fits(alloc Alloc) bool {
	if !s.Reachable() {
		return false
	}
	return alloc.Cores <= s.FreeCores() && alloc.MemoryGB <= s.FreeMemGB()+1e-9
}

// Up reports whether the server is physically running.
func (s *Server) Up() bool { return !s.down }

// SetDown marks the server crashed. Placements are NOT cleared here: they
// are the manager's belief, and it only learns of the crash through the
// failure detector (or a restart reconciliation).
func (s *Server) SetDown() {
	s.down = true
	s.degrade = ResVec{}
	s.partitioned = false
	s.reindex()
}

// SetUp brings a crashed server back. It rejoins clean: not partitioned, not
// degraded. Detector state recovers on the next heartbeat.
func (s *Server) SetUp() {
	s.down = false
	s.degrade = ResVec{}
	s.partitioned = false
	s.reindex()
}

// SetPartitioned sets whether the server is network-partitioned from the
// manager: it keeps running resident work, but heartbeats are lost.
func (s *Server) SetPartitioned(p bool) {
	if s.partitioned == p {
		return
	}
	s.partitioned = p
	s.reindex()
}

// Partitioned reports whether heartbeats from this server are being lost.
func (s *Server) Partitioned() bool { return s.partitioned }

// Reachable reports whether the manager can talk to the server: it is up
// and not partitioned. Unreachable servers accept no placements.
func (s *Server) Reachable() bool { return !s.down && !s.partitioned }

// SetDegrade installs extra interference pressure modeling a transient
// slowdown (degraded IPC). It replaces any previous degradation.
func (s *Server) SetDegrade(v ResVec) {
	if s.degrade == v {
		return
	}
	s.degrade = v
	s.reindex()
}

// Degrade returns the current slowdown pressure.
func (s *Server) Degrade() ResVec { return s.degrade }

// Degraded reports whether any slowdown pressure is installed.
func (s *Server) Degraded() bool {
	for r := range s.degrade {
		if s.degrade[r] != 0 { //lint:allow(floatcmp) zero means "no pressure installed"
			return true
		}
	}
	return false
}

// Det returns the failure detector's belief about this server.
func (s *Server) Det() DetectorState { return s.det }

// SetDet records the failure detector's belief. Only the runtime's heartbeat
// detector should call this.
func (s *Server) SetDet(d DetectorState) {
	if s.det == d {
		// Heartbeats confirm the common case every beat; skip the reindex.
		return
	}
	s.det = d
	s.reindex()
}

// Schedulable reports whether the scheduler may place new work here: the
// server is reachable and the failure detector does not suspect it.
func (s *Server) Schedulable() bool { return s.Reachable() && s.det == DetOK }

// Place reserves alloc for the given workload. It returns the placement or
// an error when capacity is insufficient or the workload already resides
// here.
func (s *Server) Place(workloadID string, alloc Alloc, caused ResVec, bestEffort bool) (*Placement, error) {
	if !alloc.Valid() {
		return nil, fmt.Errorf("cluster: invalid alloc %+v for %s", alloc, workloadID)
	}
	if _, dup := s.placements[workloadID]; dup {
		return nil, fmt.Errorf("cluster: %s already placed on server %d", workloadID, s.ID)
	}
	if !s.Reachable() {
		return nil, fmt.Errorf("cluster: server %d is unreachable (down=%v partitioned=%v)",
			s.ID, s.down, s.partitioned)
	}
	if !s.Fits(alloc) {
		return nil, fmt.Errorf("cluster: server %d cannot fit %+v (free %d cores, %.1f GB)",
			s.ID, alloc, s.FreeCores(), s.FreeMemGB())
	}
	pl := &Placement{WorkloadID: workloadID, Server: s, Alloc: alloc, Caused: caused, BestEffort: bestEffort}
	s.placements[workloadID] = pl
	s.order = append(s.order, pl)
	for i := len(s.order) - 1; i > 0 && s.order[i].WorkloadID < s.order[i-1].WorkloadID; i-- {
		s.order[i], s.order[i-1] = s.order[i-1], s.order[i]
	}
	s.usedCores += alloc.Cores
	s.usedMemGB += alloc.MemoryGB
	s.pressure = s.pressure.Add(caused)
	s.reindex()
	return pl, nil
}

// Remove releases the workload's placement. It is an error to remove a
// workload that is not placed here.
func (s *Server) Remove(workloadID string) error {
	pl, ok := s.placements[workloadID]
	if !ok {
		//lint:allow(hotalloc) error path: removal of a workload that is not resident
		return fmt.Errorf("cluster: %s not placed on server %d", workloadID, s.ID)
	}
	delete(s.placements, workloadID)
	for i, p := range s.order {
		if p == pl {
			//lint:allow(hotalloc) in-place shift: the append reslices the existing backing array and never grows it
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	s.usedCores -= pl.Alloc.Cores
	s.usedMemGB -= pl.Alloc.MemoryGB
	s.pressure = s.pressure.Sub(pl.Caused)
	s.reindex()
	return nil
}

// Resize changes the allocation and caused-pressure of an existing
// placement in place (scale-up/down adjustment).
func (s *Server) Resize(workloadID string, alloc Alloc, caused ResVec) error {
	pl, ok := s.placements[workloadID]
	if !ok {
		return fmt.Errorf("cluster: %s not placed on server %d", workloadID, s.ID)
	}
	if !s.Reachable() {
		return fmt.Errorf("cluster: server %d is unreachable, cannot resize %s", s.ID, workloadID)
	}
	dCores := alloc.Cores - pl.Alloc.Cores
	dMem := alloc.MemoryGB - pl.Alloc.MemoryGB
	if dCores > s.FreeCores() || dMem > s.FreeMemGB()+1e-9 {
		return fmt.Errorf("cluster: server %d cannot grow %s to %+v", s.ID, workloadID, alloc)
	}
	s.usedCores += dCores
	s.usedMemGB += dMem
	s.pressure = s.pressure.Sub(pl.Caused).Add(caused)
	pl.Alloc = alloc
	pl.Caused = caused
	s.reindex()
	return nil
}

// Placement returns the placement of the given workload, or nil.
func (s *Server) Placement(workloadID string) *Placement { return s.placements[workloadID] }

// Placements returns the resident placements in workload-ID order
// (deterministic iteration). The slice is the server's live ordering —
// callers sweep it every decision and must not mutate it; it is valid
// until the next Place or Remove on this server.
func (s *Server) Placements() []*Placement { return s.order }

// NumPlacements returns the number of resident workloads.
func (s *Server) NumPlacements() int { return len(s.placements) }

// SetProbe injects extra shared-resource pressure (the interference
// microbenchmarks of §3.2/§4.1). It replaces any previous probe.
func (s *Server) SetProbe(p ResVec) {
	if s.probe == p {
		return
	}
	s.probe = p
	s.reindex()
}

// Probe returns the currently injected probe pressure.
func (s *Server) Probe() ResVec { return s.probe }

// SetIsolation configures hardware partitioning (cache ways, NIC rate
// limits, ...): isolation[r] is the fraction of cross-workload pressure in
// resource r that partitioning eliminates (§4.4 "resource partitioning is
// orthogonal ... Quasar will have to determine the settings").
func (s *Server) SetIsolation(v ResVec) {
	for r := range v {
		s.isolation[r] = clampUnit(v[r])
	}
	s.reindex()
}

// Isolation returns the current partitioning configuration.
func (s *Server) Isolation() ResVec { return s.isolation }

func clampUnit(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}

// PressureOn returns the shared-resource pressure experienced by the given
// workload: everything caused by its neighbours and injected probes, but not
// by itself, attenuated by any configured partitioning. workloadID may be
// "" to get total pressure.
func (s *Server) PressureOn(workloadID string) ResVec {
	p := s.pressure.Add(s.probe).Add(s.degrade)
	if pl, ok := s.placements[workloadID]; ok {
		p = p.Sub(pl.Caused)
	}
	for r := range p {
		p[r] *= 1 - s.isolation[r]
	}
	return p
}

// CPUUtilization returns actually-busy cores divided by total cores.
// Summation runs in workload-ID order: float addition is not associative,
// so summing in map order would change the last bits run to run.
// A down server does no work, whatever stale placements it still carries.
func (s *Server) CPUUtilization() float64 {
	if s.down {
		return 0
	}
	busy := 0.0
	for _, pl := range s.Placements() {
		busy += pl.ActiveCores
	}
	u := busy / float64(s.Platform.Cores)
	if u > 1 {
		u = 1
	}
	return u
}

// MemUtilization returns actually-used memory divided by total memory.
func (s *Server) MemUtilization() float64 {
	if s.down {
		return 0
	}
	used := 0.0
	for _, pl := range s.Placements() {
		used += pl.ActiveMemGB
	}
	u := used / s.Platform.MemoryGB
	if u > 1 {
		u = 1
	}
	return u
}

// DiskUtilization returns the fraction of disk bandwidth in use.
func (s *Server) DiskUtilization() float64 {
	if s.down {
		return 0
	}
	used := 0.0
	for _, pl := range s.Placements() {
		used += pl.ActiveDisk
	}
	if used > 1 {
		used = 1
	}
	return used
}

// AllocUtilization returns allocated cores divided by total cores (the
// "reserved" series of Fig. 1 and 11d).
func (s *Server) AllocUtilization() float64 {
	return float64(s.usedCores) / float64(s.Platform.Cores)
}

// Cluster is a set of servers drawn from a list of platforms.
type Cluster struct {
	Platforms []Platform
	Servers   []*Server

	byPlatform map[string][]*Server
	index      *FreeIndex
}

// New builds a cluster with count[i] servers of platforms[i].
func New(platforms []Platform, counts []int) (*Cluster, error) {
	if len(platforms) != len(counts) {
		return nil, fmt.Errorf("cluster: %d platforms but %d counts", len(platforms), len(counts))
	}
	c := &Cluster{Platforms: platforms, byPlatform: make(map[string][]*Server)}
	id := 0
	for i := range platforms {
		if err := platforms[i].Validate(); err != nil {
			return nil, err
		}
		for j := 0; j < counts[i]; j++ {
			s := NewServer(id, &c.Platforms[i])
			s.cl, s.pidx = c, i
			c.Servers = append(c.Servers, s)
			c.byPlatform[platforms[i].Name] = append(c.byPlatform[platforms[i].Name], s)
			id++
		}
	}
	c.index = newFreeIndex(c)
	return c, nil
}

// NewUniform builds a cluster with the same number of servers per platform,
// distributing any remainder over the first platforms.
func NewUniform(platforms []Platform, total int) (*Cluster, error) {
	counts := make([]int, len(platforms))
	for i := 0; i < total; i++ {
		counts[i%len(platforms)]++
	}
	return New(platforms, counts)
}

// AssignZones spreads the servers round-robin over n fault zones.
func (c *Cluster) AssignZones(n int) {
	if n < 1 {
		n = 1
	}
	for i, s := range c.Servers {
		s.Zone = i % n
	}
}

// ByPlatform returns the servers of the named platform.
func (c *Cluster) ByPlatform(name string) []*Server { return c.byPlatform[name] }

// PlatformIndex returns the position of the named platform, or -1.
func (c *Cluster) PlatformIndex(name string) int {
	for i := range c.Platforms {
		if c.Platforms[i].Name == name {
			return i
		}
	}
	return -1
}

// TotalCores returns the core count of the whole cluster.
func (c *Cluster) TotalCores() int {
	n := 0
	for _, s := range c.Servers {
		n += s.Platform.Cores
	}
	return n
}

// TotalMemGB returns the memory capacity of the whole cluster.
func (c *Cluster) TotalMemGB() float64 {
	m := 0.0
	for _, s := range c.Servers {
		m += s.Platform.MemoryGB
	}
	return m
}

// MeanCPUUtilization averages CPU utilization over all servers.
func (c *Cluster) MeanCPUUtilization() float64 {
	if len(c.Servers) == 0 {
		return 0
	}
	sum := 0.0
	for _, s := range c.Servers {
		sum += s.CPUUtilization()
	}
	return sum / float64(len(c.Servers))
}

// FreeCores sums unallocated cores over all servers.
func (c *Cluster) FreeCores() int {
	n := 0
	for _, s := range c.Servers {
		n += s.FreeCores()
	}
	return n
}

// NumLive counts servers the scheduler can currently use (reachable and not
// suspected by the failure detector).
func (c *Cluster) NumLive() int {
	n := 0
	for _, s := range c.Servers {
		if s.Schedulable() {
			n++
		}
	}
	return n
}

// LiveCores returns the core count of schedulable servers only: dead or
// suspect machines contribute no capacity.
func (c *Cluster) LiveCores() int {
	n := 0
	for _, s := range c.Servers {
		if s.Schedulable() {
			n += s.Platform.Cores
		}
	}
	return n
}

// LiveFreeCores sums unallocated cores over schedulable servers: the
// capacity actually available to recover displaced work.
func (c *Cluster) LiveFreeCores() int {
	n := 0
	for _, s := range c.Servers {
		if s.Schedulable() {
			n += s.FreeCores()
		}
	}
	return n
}

// LiveMemGB returns the memory capacity of schedulable servers only.
func (c *Cluster) LiveMemGB() float64 {
	m := 0.0
	for _, s := range c.Servers {
		if s.Schedulable() {
			m += s.Platform.MemoryGB
		}
	}
	return m
}
