package cluster

import (
	"math"
	"testing"
	"testing/quick"
)

func TestResourceNames(t *testing.T) {
	for r := Resource(0); r < NumResources; r++ {
		name := r.String()
		back, err := ParseResource(name)
		if err != nil {
			t.Fatalf("ParseResource(%q): %v", name, err)
		}
		if back != r {
			t.Fatalf("round trip %v -> %q -> %v", r, name, back)
		}
	}
	if _, err := ParseResource("bogus"); err == nil {
		t.Fatal("ParseResource accepted bogus name")
	}
}

func TestResVecOps(t *testing.T) {
	var a, b ResVec
	a[ResCPU], a[ResLLC] = 0.5, 0.25
	b[ResCPU], b[ResNetBW] = 0.25, 1.0
	sum := a.Add(b)
	if sum[ResCPU] != 0.75 || sum[ResLLC] != 0.25 || sum[ResNetBW] != 1.0 {
		t.Fatalf("Add wrong: %v", sum)
	}
	diff := sum.Sub(b)
	if math.Abs(diff[ResCPU]-0.5) > 1e-12 || diff[ResNetBW] != 0 {
		t.Fatalf("Sub wrong: %v", diff)
	}
	// Sub clamps at zero.
	under := a.Sub(b)
	if under[ResNetBW] != 0 {
		t.Fatalf("Sub did not clamp: %v", under)
	}
	if got := a.Scale(2)[ResLLC]; got != 0.5 {
		t.Fatalf("Scale wrong: %v", got)
	}
	if a.Max() != 0.5 {
		t.Fatalf("Max wrong: %v", a.Max())
	}
	if got := a.Dot(b); math.Abs(got-0.125) > 1e-12 {
		t.Fatalf("Dot = %v, want 0.125", got)
	}
}

func TestLocalPlatformsMatchTable1(t *testing.T) {
	ps := LocalPlatforms()
	if len(ps) != 10 {
		t.Fatalf("got %d platforms, want 10", len(ps))
	}
	wantCores := []int{2, 4, 8, 8, 8, 8, 12, 12, 16, 24}
	wantMem := []float64{4, 8, 12, 16, 20, 24, 16, 24, 48, 48}
	for i, p := range ps {
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
		if p.Cores != wantCores[i] || p.MemoryGB != wantMem[i] {
			t.Fatalf("platform %s: %d cores %.0f GB, want %d/%.0f",
				p.Name, p.Cores, p.MemoryGB, wantCores[i], wantMem[i])
		}
	}
	// Per-core performance should be nondecreasing with platform class.
	for i := 1; i < len(ps); i++ {
		if ps[i].CorePerf < ps[0].CorePerf {
			t.Fatalf("platform %s slower per-core than A", ps[i].Name)
		}
	}
}

func TestEC2Platforms(t *testing.T) {
	ps := EC2Platforms()
	if len(ps) != 14 {
		t.Fatalf("got %d EC2 platforms, want 14", len(ps))
	}
	for _, p := range ps {
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestHighestEnd(t *testing.T) {
	ps := LocalPlatforms()
	if got := HighestEnd(ps); ps[got].Name != "J" {
		t.Fatalf("highest-end local platform = %s, want J", ps[got].Name)
	}
	ec2 := EC2Platforms()
	best := ec2[HighestEnd(ec2)]
	if best.Cores != 32 || best.MemoryGB != 244 {
		t.Fatalf("highest-end EC2 = %+v", best)
	}
}

func TestPlaceRemoveAccounting(t *testing.T) {
	p := LocalPlatforms()[9] // J: 24 cores, 48 GB
	s := NewServer(0, &p)
	var caused ResVec
	caused[ResLLC] = 0.3

	pl, err := s.Place("w1", Alloc{Cores: 8, MemoryGB: 16}, caused, false)
	if err != nil {
		t.Fatal(err)
	}
	if s.FreeCores() != 16 || math.Abs(s.FreeMemGB()-32) > 1e-9 {
		t.Fatalf("free after place: %d cores %.1f GB", s.FreeCores(), s.FreeMemGB())
	}
	if pl.Server != s {
		t.Fatal("placement back-pointer wrong")
	}
	if got := s.PressureOn("other")[ResLLC]; got != 0.3 {
		t.Fatalf("pressure on neighbour = %v, want 0.3", got)
	}
	if got := s.PressureOn("w1")[ResLLC]; got != 0 {
		t.Fatalf("pressure on self = %v, want 0 (self excluded)", got)
	}
	if err := s.Remove("w1"); err != nil {
		t.Fatal(err)
	}
	if s.UsedCores() != 0 || s.UsedMemGB() != 0 {
		t.Fatal("remove did not release resources")
	}
	if got := s.PressureOn("")[ResLLC]; got != 0 {
		t.Fatalf("pressure after remove = %v", got)
	}
	if err := s.Remove("w1"); err == nil {
		t.Fatal("double remove succeeded")
	}
}

func TestPlaceRejections(t *testing.T) {
	p := LocalPlatforms()[0] // A: 2 cores 4 GB
	s := NewServer(0, &p)
	if _, err := s.Place("w", Alloc{Cores: 3, MemoryGB: 1}, ResVec{}, false); err == nil {
		t.Fatal("over-core placement succeeded")
	}
	if _, err := s.Place("w", Alloc{Cores: 1, MemoryGB: 8}, ResVec{}, false); err == nil {
		t.Fatal("over-memory placement succeeded")
	}
	if _, err := s.Place("w", Alloc{}, ResVec{}, false); err == nil {
		t.Fatal("zero alloc succeeded")
	}
	if _, err := s.Place("w", Alloc{Cores: 1, MemoryGB: 1}, ResVec{}, false); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Place("w", Alloc{Cores: 1, MemoryGB: 1}, ResVec{}, false); err == nil {
		t.Fatal("duplicate placement succeeded")
	}
}

func TestResize(t *testing.T) {
	p := LocalPlatforms()[9]
	s := NewServer(0, &p)
	var c1, c2 ResVec
	c1[ResCPU] = 0.2
	c2[ResCPU] = 0.5
	if _, err := s.Place("w", Alloc{Cores: 4, MemoryGB: 8}, c1, false); err != nil {
		t.Fatal(err)
	}
	if err := s.Resize("w", Alloc{Cores: 12, MemoryGB: 24}, c2); err != nil {
		t.Fatal(err)
	}
	if s.UsedCores() != 12 || s.UsedMemGB() != 24 {
		t.Fatalf("resize accounting wrong: %d cores %.0f GB", s.UsedCores(), s.UsedMemGB())
	}
	if got := s.PressureOn("")[ResCPU]; math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("pressure after resize = %v, want 0.5", got)
	}
	if err := s.Resize("w", Alloc{Cores: 25, MemoryGB: 24}, c2); err == nil {
		t.Fatal("resize beyond capacity succeeded")
	}
	if err := s.Resize("nope", Alloc{Cores: 1, MemoryGB: 1}, c1); err == nil {
		t.Fatal("resize of absent workload succeeded")
	}
}

func TestProbePressure(t *testing.T) {
	p := LocalPlatforms()[3]
	s := NewServer(0, &p)
	var probe ResVec
	probe[ResL2] = 0.8
	s.SetProbe(probe)
	if got := s.PressureOn("any")[ResL2]; got != 0.8 {
		t.Fatalf("probe pressure = %v", got)
	}
	s.SetProbe(ResVec{})
	if got := s.PressureOn("any")[ResL2]; got != 0 {
		t.Fatalf("probe not cleared: %v", got)
	}
}

func TestUtilizationGauges(t *testing.T) {
	p := LocalPlatforms()[2] // C: 8 cores 12 GB
	s := NewServer(0, &p)
	pl, err := s.Place("w", Alloc{Cores: 4, MemoryGB: 6}, ResVec{}, false)
	if err != nil {
		t.Fatal(err)
	}
	pl.ActiveCores = 2
	pl.ActiveMemGB = 3
	pl.ActiveDisk = 0.25
	if got := s.CPUUtilization(); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("cpu util = %v, want 0.25", got)
	}
	if got := s.MemUtilization(); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("mem util = %v, want 0.25", got)
	}
	if got := s.DiskUtilization(); got != 0.25 {
		t.Fatalf("disk util = %v", got)
	}
	if got := s.AllocUtilization(); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("alloc util = %v, want 0.5", got)
	}
	// Gauges clamp at 1.
	pl.ActiveCores = 100
	if s.CPUUtilization() != 1 {
		t.Fatal("cpu util not clamped")
	}
}

func TestNewCluster(t *testing.T) {
	ps := LocalPlatforms()
	counts := []int{4, 4, 4, 4, 4, 4, 4, 4, 4, 4}
	c, err := New(ps, counts)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Servers) != 40 {
		t.Fatalf("%d servers, want 40", len(c.Servers))
	}
	if got := len(c.ByPlatform("J")); got != 4 {
		t.Fatalf("%d J servers, want 4", got)
	}
	if c.PlatformIndex("E") != 4 {
		t.Fatalf("PlatformIndex(E) = %d", c.PlatformIndex("E"))
	}
	if c.PlatformIndex("nope") != -1 {
		t.Fatal("PlatformIndex of unknown platform != -1")
	}
	wantCores := 4 * (2 + 4 + 8 + 8 + 8 + 8 + 12 + 12 + 16 + 24)
	if c.TotalCores() != wantCores {
		t.Fatalf("total cores %d, want %d", c.TotalCores(), wantCores)
	}
	if _, err := New(ps, []int{1}); err == nil {
		t.Fatal("mismatched counts accepted")
	}
}

func TestNewUniform(t *testing.T) {
	c, err := NewUniform(EC2Platforms(), 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Servers) != 200 {
		t.Fatalf("%d servers, want 200", len(c.Servers))
	}
	// Every platform gets 200/14 = 14 or 15 servers.
	for _, p := range EC2Platforms() {
		n := len(c.ByPlatform(p.Name))
		if n != 14 && n != 15 {
			t.Fatalf("platform %s has %d servers", p.Name, n)
		}
	}
}

func TestPlacementsDeterministicOrder(t *testing.T) {
	p := LocalPlatforms()[9]
	s := NewServer(0, &p)
	for _, id := range []string{"zeta", "alpha", "mid"} {
		if _, err := s.Place(id, Alloc{Cores: 1, MemoryGB: 1}, ResVec{}, false); err != nil {
			t.Fatal(err)
		}
	}
	pls := s.Placements()
	if pls[0].WorkloadID != "alpha" || pls[1].WorkloadID != "mid" || pls[2].WorkloadID != "zeta" {
		t.Fatalf("placements not sorted: %v", []string{pls[0].WorkloadID, pls[1].WorkloadID, pls[2].WorkloadID})
	}
}

// Property: a sequence of valid places and removes never lets usage go
// negative or beyond capacity, and pressure stays non-negative.
func TestAccountingInvariant(t *testing.T) {
	f := func(ops []uint8) bool {
		p := LocalPlatforms()[9]
		s := NewServer(0, &p)
		n := 0
		for i, op := range ops {
			id := string(rune('a' + i%26))
			if op%2 == 0 {
				var cv ResVec
				cv[op%uint8(NumResources)] = float64(op%5) / 10
				if _, err := s.Place(id, Alloc{Cores: int(op%4) + 1, MemoryGB: float64(op%8) + 1}, cv, false); err == nil {
					n++
				}
			} else {
				if err := s.Remove(id); err == nil {
					n--
				}
			}
			if s.UsedCores() < 0 || s.UsedCores() > p.Cores {
				return false
			}
			if s.UsedMemGB() < -1e-9 || s.UsedMemGB() > p.MemoryGB+1e-9 {
				return false
			}
			for _, v := range s.PressureOn("") {
				if v < 0 {
					return false
				}
			}
		}
		return s.NumPlacements() == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
