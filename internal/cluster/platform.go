package cluster

import "fmt"

// Platform describes a server configuration: its size (cores, memory) and
// its per-core microarchitectural quality. CorePerf is a relative per-core
// throughput multiplier (1.0 = the baseline platform A core); the bandwidth
// fields bound how much simultaneous pressure the shared resources absorb
// before contention penalties apply.
type Platform struct {
	Name      string
	Cores     int
	MemoryGB  float64
	CorePerf  float64 // per-core relative performance
	CacheMB   float64 // last-level cache size
	MemBWGBs  float64 // memory bandwidth
	DiskBWMBs float64
	NetBWGbs  float64
}

// Validate reports whether the platform definition is self-consistent.
func (p *Platform) Validate() error {
	switch {
	case p.Name == "":
		return fmt.Errorf("cluster: platform with empty name")
	case p.Cores <= 0:
		return fmt.Errorf("cluster: platform %s has %d cores", p.Name, p.Cores)
	case p.MemoryGB <= 0:
		return fmt.Errorf("cluster: platform %s has %.1f GB memory", p.Name, p.MemoryGB)
	case p.CorePerf <= 0:
		return fmt.Errorf("cluster: platform %s has non-positive CorePerf", p.Name)
	}
	return nil
}

// LocalPlatforms returns the ten platforms A–J of the paper's local cluster
// (Table 1): from a dual-core Atom-class board (A) to a dual-socket 24-core
// Xeon with 48 GB (J). Core/memory counts are the table's; per-core
// performance grows with platform class so that, combined with core counts,
// whole-node throughput spans the ~7x heterogeneity range of Figure 2.
func LocalPlatforms() []Platform {
	return []Platform{
		{Name: "A", Cores: 2, MemoryGB: 4, CorePerf: 1.00, CacheMB: 1, MemBWGBs: 4, DiskBWMBs: 60, NetBWGbs: 1},
		{Name: "B", Cores: 4, MemoryGB: 8, CorePerf: 1.25, CacheMB: 2, MemBWGBs: 8, DiskBWMBs: 80, NetBWGbs: 1},
		{Name: "C", Cores: 8, MemoryGB: 12, CorePerf: 1.35, CacheMB: 4, MemBWGBs: 12, DiskBWMBs: 100, NetBWGbs: 1},
		{Name: "D", Cores: 8, MemoryGB: 16, CorePerf: 1.50, CacheMB: 8, MemBWGBs: 17, DiskBWMBs: 120, NetBWGbs: 10},
		{Name: "E", Cores: 8, MemoryGB: 20, CorePerf: 1.65, CacheMB: 8, MemBWGBs: 21, DiskBWMBs: 140, NetBWGbs: 10},
		{Name: "F", Cores: 8, MemoryGB: 24, CorePerf: 1.80, CacheMB: 12, MemBWGBs: 25, DiskBWMBs: 160, NetBWGbs: 10},
		{Name: "G", Cores: 12, MemoryGB: 16, CorePerf: 1.70, CacheMB: 12, MemBWGBs: 25, DiskBWMBs: 160, NetBWGbs: 10},
		{Name: "H", Cores: 12, MemoryGB: 24, CorePerf: 1.85, CacheMB: 16, MemBWGBs: 32, DiskBWMBs: 200, NetBWGbs: 10},
		{Name: "I", Cores: 16, MemoryGB: 48, CorePerf: 2.00, CacheMB: 20, MemBWGBs: 42, DiskBWMBs: 250, NetBWGbs: 10},
		{Name: "J", Cores: 24, MemoryGB: 48, CorePerf: 2.10, CacheMB: 30, MemBWGBs: 51, DiskBWMBs: 300, NetBWGbs: 10},
	}
}

// EC2Platforms returns the 14 dedicated-instance types of the paper's
// 200-server EC2 cluster, "ranging from small to x-large". Names follow the
// 2013-era EC2 families.
func EC2Platforms() []Platform {
	return []Platform{
		{Name: "m1.small", Cores: 1, MemoryGB: 1.7, CorePerf: 1.00, CacheMB: 1, MemBWGBs: 3, DiskBWMBs: 50, NetBWGbs: 0.25},
		{Name: "m1.medium", Cores: 1, MemoryGB: 3.75, CorePerf: 1.30, CacheMB: 2, MemBWGBs: 5, DiskBWMBs: 60, NetBWGbs: 0.5},
		{Name: "m1.large", Cores: 2, MemoryGB: 7.5, CorePerf: 1.35, CacheMB: 4, MemBWGBs: 8, DiskBWMBs: 80, NetBWGbs: 0.5},
		{Name: "m1.xlarge", Cores: 4, MemoryGB: 15, CorePerf: 1.40, CacheMB: 8, MemBWGBs: 12, DiskBWMBs: 100, NetBWGbs: 1},
		{Name: "m3.xlarge", Cores: 4, MemoryGB: 15, CorePerf: 1.75, CacheMB: 12, MemBWGBs: 20, DiskBWMBs: 120, NetBWGbs: 1},
		{Name: "m3.2xlarge", Cores: 8, MemoryGB: 30, CorePerf: 1.80, CacheMB: 20, MemBWGBs: 32, DiskBWMBs: 160, NetBWGbs: 1},
		{Name: "c1.medium", Cores: 2, MemoryGB: 1.7, CorePerf: 1.55, CacheMB: 2, MemBWGBs: 6, DiskBWMBs: 60, NetBWGbs: 0.5},
		{Name: "c1.xlarge", Cores: 8, MemoryGB: 7, CorePerf: 1.60, CacheMB: 8, MemBWGBs: 18, DiskBWMBs: 120, NetBWGbs: 1},
		{Name: "cc2.8xlarge", Cores: 32, MemoryGB: 60.5, CorePerf: 2.05, CacheMB: 40, MemBWGBs: 80, DiskBWMBs: 400, NetBWGbs: 10},
		{Name: "m2.xlarge", Cores: 2, MemoryGB: 17.1, CorePerf: 1.65, CacheMB: 6, MemBWGBs: 14, DiskBWMBs: 100, NetBWGbs: 0.5},
		{Name: "m2.2xlarge", Cores: 4, MemoryGB: 34.2, CorePerf: 1.70, CacheMB: 12, MemBWGBs: 24, DiskBWMBs: 140, NetBWGbs: 1},
		{Name: "m2.4xlarge", Cores: 8, MemoryGB: 68.4, CorePerf: 1.75, CacheMB: 24, MemBWGBs: 40, DiskBWMBs: 200, NetBWGbs: 1},
		{Name: "hi1.4xlarge", Cores: 16, MemoryGB: 60.5, CorePerf: 1.90, CacheMB: 24, MemBWGBs: 50, DiskBWMBs: 1000, NetBWGbs: 10},
		{Name: "cr1.8xlarge", Cores: 32, MemoryGB: 244, CorePerf: 2.15, CacheMB: 50, MemBWGBs: 100, DiskBWMBs: 400, NetBWGbs: 10},
	}
}

// HighestEnd returns the index of the platform with the most scale-up
// headroom (most cores; ties broken by memory). Scale-up profiling runs on
// this platform, per the paper.
func HighestEnd(platforms []Platform) int {
	best := 0
	for i, p := range platforms {
		b := platforms[best]
		if p.Cores > b.Cores || (p.Cores == b.Cores && p.MemoryGB > b.MemoryGB) {
			best = i
		}
	}
	return best
}
