// Package metrics provides the measurement plumbing of the evaluation:
// streaming percentile tracking, utilization time series and heatmaps, and
// target-tracking statistics used by every figure of the paper.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Series is an append-only time series of (time, value) points.
type Series struct {
	Name  string
	Times []float64
	Vals  []float64
}

// Add appends a point. Times must be nondecreasing.
func (s *Series) Add(t, v float64) {
	if n := len(s.Times); n > 0 && t < s.Times[n-1] {
		panic(fmt.Sprintf("metrics: series %q time went backwards: %v after %v",
			s.Name, t, s.Times[n-1]))
	}
	s.Times = append(s.Times, t)
	s.Vals = append(s.Vals, v)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.Vals) }

// Mean returns the average value, or 0 when empty.
func (s *Series) Mean() float64 {
	if len(s.Vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.Vals {
		sum += v
	}
	return sum / float64(len(s.Vals))
}

// Max returns the maximum value, or 0 when empty.
func (s *Series) Max() float64 {
	m := 0.0
	for i, v := range s.Vals {
		if i == 0 || v > m {
			m = v
		}
	}
	return m
}

// MeanBetween averages values with t in [t0, t1).
func (s *Series) MeanBetween(t0, t1 float64) float64 {
	sum, n := 0.0, 0
	for i, t := range s.Times {
		if t >= t0 && t < t1 {
			sum += s.Vals[i]
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Distribution accumulates values for percentile queries.
type Distribution struct {
	vals   []float64
	sorted bool
}

// Add appends a sample.
func (d *Distribution) Add(v float64) {
	d.vals = append(d.vals, v)
	d.sorted = false
}

// AddN appends the sample v with weight n (n identical samples).
func (d *Distribution) AddN(v float64, n int) {
	for i := 0; i < n; i++ {
		d.Add(v)
	}
}

// N returns the sample count.
func (d *Distribution) N() int { return len(d.vals) }

// Percentile returns the p-th percentile (0..100) by nearest-rank, or NaN
// when empty.
func (d *Distribution) Percentile(p float64) float64 {
	if len(d.vals) == 0 {
		return math.NaN()
	}
	if !d.sorted {
		sort.Float64s(d.vals)
		d.sorted = true
	}
	if p <= 0 {
		return d.vals[0]
	}
	if p >= 100 {
		return d.vals[len(d.vals)-1]
	}
	rank := int(math.Ceil(p/100*float64(len(d.vals)))) - 1
	if rank < 0 {
		rank = 0
	}
	return d.vals[rank]
}

// Mean returns the sample mean, or NaN when empty.
func (d *Distribution) Mean() float64 {
	if len(d.vals) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, v := range d.vals {
		sum += v
	}
	return sum / float64(len(d.vals))
}

// Max returns the largest sample, or NaN when empty.
func (d *Distribution) Max() float64 {
	if len(d.vals) == 0 {
		return math.NaN()
	}
	if !d.sorted {
		sort.Float64s(d.vals)
		d.sorted = true
	}
	return d.vals[len(d.vals)-1]
}

// FractionBelow returns the fraction of samples <= bound.
func (d *Distribution) FractionBelow(bound float64) float64 {
	if len(d.vals) == 0 {
		return 0
	}
	if !d.sorted {
		sort.Float64s(d.vals)
		d.sorted = true
	}
	idx := sort.SearchFloat64s(d.vals, math.Nextafter(bound, math.Inf(1)))
	return float64(idx) / float64(len(d.vals))
}

// CDF returns (value, cumulative fraction) pairs at the given number of
// evenly spaced quantiles, for plotting CDFs like Fig. 1c.
func (d *Distribution) CDF(points int) (vals, fracs []float64) {
	if len(d.vals) == 0 || points < 2 {
		return nil, nil
	}
	if !d.sorted {
		sort.Float64s(d.vals)
		d.sorted = true
	}
	for i := 0; i < points; i++ {
		f := float64(i) / float64(points-1)
		idx := int(f * float64(len(d.vals)-1))
		vals = append(vals, d.vals[idx])
		fracs = append(fracs, f)
	}
	return vals, fracs
}

// Heatmap holds per-entity utilization over time: one row per server, one
// column per sampling instant (Figs. 7 and 11b-c).
type Heatmap struct {
	Rows  int
	Times []float64
	Cells [][]float64 // Cells[t][row]
}

// NewHeatmap returns a heatmap for rows entities.
func NewHeatmap(rows int) *Heatmap { return &Heatmap{Rows: rows} }

// Sample appends one column of per-entity values at time t.
func (h *Heatmap) Sample(t float64, vals []float64) {
	if len(vals) != h.Rows {
		panic(fmt.Sprintf("metrics: heatmap sample with %d rows, want %d", len(vals), h.Rows))
	}
	h.Times = append(h.Times, t)
	col := make([]float64, h.Rows) //lint:allow(hotalloc) the column is retained heatmap history by design; copying frees the caller's buffer for reuse
	copy(col, vals)
	h.Cells = append(h.Cells, col)
}

// MeanOverall averages every cell.
func (h *Heatmap) MeanOverall() float64 {
	sum, n := 0.0, 0
	for _, col := range h.Cells {
		for _, v := range col {
			sum += v
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// MeanAt averages the column nearest to time t.
func (h *Heatmap) MeanAt(t float64) float64 {
	if len(h.Times) == 0 {
		return 0
	}
	best := 0
	for i, ht := range h.Times {
		if math.Abs(ht-t) < math.Abs(h.Times[best]-t) {
			best = i
		}
	}
	sum := 0.0
	for _, v := range h.Cells[best] {
		sum += v
	}
	return sum / float64(h.Rows)
}

// RowMeans returns each entity's time-averaged value.
func (h *Heatmap) RowMeans() []float64 {
	out := make([]float64, h.Rows)
	if len(h.Cells) == 0 {
		return out
	}
	for _, col := range h.Cells {
		for r, v := range col {
			out[r] += v
		}
	}
	for r := range out {
		out[r] /= float64(len(h.Cells))
	}
	return out
}

// TargetTracker accumulates per-workload performance normalized to target
// (Fig. 11a: 1.0 = met the target exactly; >1 = beat it).
type TargetTracker struct {
	byID  map[string]float64
	order []string
}

// NewTargetTracker returns an empty tracker.
func NewTargetTracker() *TargetTracker {
	return &TargetTracker{byID: make(map[string]float64)}
}

// Record stores the final normalized performance of a workload.
func (t *TargetTracker) Record(id string, normalized float64) {
	if _, ok := t.byID[id]; !ok {
		t.order = append(t.order, id)
	}
	t.byID[id] = normalized
}

// N returns the number of recorded workloads.
func (t *TargetTracker) N() int { return len(t.order) }

// Sorted returns normalized performance worst-to-best (the x-axis of
// Fig. 11a).
func (t *TargetTracker) Sorted() []float64 {
	out := make([]float64, 0, len(t.order))
	for _, id := range t.order {
		out = append(out, t.byID[id])
	}
	sort.Float64s(out)
	return out
}

// Mean returns the average normalized performance, with values capped at
// cap (the paper reports mean of min(perf/target, 1) when discussing "% of
// target achieved"; pass cap<=0 to disable capping).
func (t *TargetTracker) Mean(cap float64) float64 {
	if len(t.order) == 0 {
		return 0
	}
	sum := 0.0
	for _, id := range t.order {
		v := t.byID[id]
		if cap > 0 && v > cap {
			v = cap
		}
		sum += v
	}
	return sum / float64(len(t.order))
}

// FractionMeeting returns the fraction of workloads with normalized
// performance >= threshold.
func (t *TargetTracker) FractionMeeting(threshold float64) float64 {
	if len(t.order) == 0 {
		return 0
	}
	n := 0
	for _, id := range t.order {
		if t.byID[id] >= threshold {
			n++
		}
	}
	return float64(n) / float64(len(t.order))
}
