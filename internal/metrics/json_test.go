package metrics

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestSeriesJSONRoundTrip(t *testing.T) {
	s := &Series{Name: "util"}
	s.Add(0, 0.25)
	s.Add(10, 0.5)
	s.Add(20, 0.75)
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var got Series
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if got.Name != s.Name || got.Len() != s.Len() {
		t.Fatalf("round-trip lost shape: %+v", got)
	}
	for i := range s.Vals {
		if got.Times[i] != s.Times[i] || got.Vals[i] != s.Vals[i] { //lint:allow(floatcmp) exact round-trip
			t.Fatalf("point %d: got (%v,%v) want (%v,%v)",
				i, got.Times[i], got.Vals[i], s.Times[i], s.Vals[i])
		}
	}
	// Marshalling is byte-stable.
	b2, err := json.Marshal(&got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, b2) {
		t.Fatalf("series marshal not byte-stable:\n%s\nvs\n%s", b, b2)
	}
}

func TestDistributionJSONRoundTrip(t *testing.T) {
	d := &Distribution{}
	for _, v := range []float64{5, 1, 3, 2, 4} {
		d.Add(v)
	}
	b, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	var got Distribution
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if got.N() != d.N() {
		t.Fatalf("round-trip lost samples: %d vs %d", got.N(), d.N())
	}
	// Percentile queries work after decode (sorted flag reset correctly).
	if got.Percentile(50) != 3 || got.Percentile(100) != 5 { //lint:allow(floatcmp) exact values
		t.Fatalf("percentiles after decode: p50=%v p100=%v",
			got.Percentile(50), got.Percentile(100))
	}
	// Once a percentile query has sorted the samples, re-marshalling emits the
	// sorted order — still a valid, deterministic representation.
	b2, err := json.Marshal(&got)
	if err != nil {
		t.Fatal(err)
	}
	var again Distribution
	if err := json.Unmarshal(b2, &again); err != nil {
		t.Fatal(err)
	}
	if again.N() != d.N() || again.Percentile(50) != 3 { //lint:allow(floatcmp) exact values
		t.Fatalf("second round-trip broke distribution: %+v", again)
	}
}

func TestHeatmapJSONRoundTrip(t *testing.T) {
	h := NewHeatmap(2)
	h.Sample(0, []float64{0.1, 0.2})
	h.Sample(10, []float64{0.3, 0.4})
	b, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	var got Heatmap
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if got.Rows != h.Rows || len(got.Times) != len(h.Times) {
		t.Fatalf("round-trip lost shape: %+v", got)
	}
	if got.MeanOverall() != h.MeanOverall() { //lint:allow(floatcmp) exact round-trip
		t.Fatalf("mean changed: %v vs %v", got.MeanOverall(), h.MeanOverall())
	}
	for i := range h.Cells {
		for j := range h.Cells[i] {
			if got.Cells[i][j] != h.Cells[i][j] { //lint:allow(floatcmp) exact round-trip
				t.Fatalf("cell (%d,%d) changed", i, j)
			}
		}
	}
}
