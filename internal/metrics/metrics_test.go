package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSeriesBasics(t *testing.T) {
	var s Series
	s.Add(0, 10)
	s.Add(1, 20)
	s.Add(2, 30)
	if s.Len() != 3 || s.Mean() != 20 || s.Max() != 30 {
		t.Fatalf("series stats wrong: len=%d mean=%v max=%v", s.Len(), s.Mean(), s.Max())
	}
	if got := s.MeanBetween(1, 3); got != 25 {
		t.Fatalf("MeanBetween = %v, want 25", got)
	}
	if got := s.MeanBetween(5, 6); got != 0 {
		t.Fatalf("empty window mean = %v", got)
	}
}

func TestSeriesRejectsTimeTravel(t *testing.T) {
	var s Series
	s.Add(5, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("backwards time accepted")
		}
	}()
	s.Add(4, 1)
}

func TestDistributionPercentiles(t *testing.T) {
	var d Distribution
	for i := 1; i <= 100; i++ {
		d.Add(float64(i))
	}
	if got := d.Percentile(50); got != 50 {
		t.Fatalf("p50 = %v", got)
	}
	if got := d.Percentile(99); got != 99 {
		t.Fatalf("p99 = %v", got)
	}
	if got := d.Percentile(0); got != 1 {
		t.Fatalf("p0 = %v", got)
	}
	if got := d.Percentile(100); got != 100 {
		t.Fatalf("p100 = %v", got)
	}
	if got := d.Mean(); got != 50.5 {
		t.Fatalf("mean = %v", got)
	}
	if got := d.Max(); got != 100 {
		t.Fatalf("max = %v", got)
	}
}

func TestDistributionEmpty(t *testing.T) {
	var d Distribution
	if !math.IsNaN(d.Percentile(50)) || !math.IsNaN(d.Mean()) || !math.IsNaN(d.Max()) {
		t.Fatal("empty distribution should return NaN")
	}
	if d.FractionBelow(10) != 0 {
		t.Fatal("empty FractionBelow != 0")
	}
}

func TestDistributionInterleavedAddQuery(t *testing.T) {
	var d Distribution
	d.Add(10)
	_ = d.Percentile(50)
	d.Add(1) // must re-sort after this
	if got := d.Percentile(0); got != 1 {
		t.Fatalf("p0 after interleaved add = %v", got)
	}
}

func TestFractionBelow(t *testing.T) {
	var d Distribution
	for i := 1; i <= 10; i++ {
		d.Add(float64(i))
	}
	if got := d.FractionBelow(5); got != 0.5 {
		t.Fatalf("FractionBelow(5) = %v", got)
	}
	if got := d.FractionBelow(10); got != 1 {
		t.Fatalf("FractionBelow(10) = %v", got)
	}
	if got := d.FractionBelow(0.5); got != 0 {
		t.Fatalf("FractionBelow(0.5) = %v", got)
	}
}

func TestAddN(t *testing.T) {
	var d Distribution
	d.AddN(7, 5)
	if d.N() != 5 || d.Percentile(50) != 7 {
		t.Fatal("AddN wrong")
	}
}

func TestCDF(t *testing.T) {
	var d Distribution
	for i := 0; i < 100; i++ {
		d.Add(float64(i))
	}
	vals, fracs := d.CDF(11)
	if len(vals) != 11 || fracs[0] != 0 || fracs[10] != 1 {
		t.Fatalf("CDF shape wrong: %v %v", vals, fracs)
	}
	for i := 1; i < len(vals); i++ {
		if vals[i] < vals[i-1] {
			t.Fatal("CDF values not monotone")
		}
	}
}

// Property: percentile is monotone in p and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []float64) bool {
		var d Distribution
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				d.Add(v)
			}
		}
		if d.N() == 0 {
			return true
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 10 {
			v := d.Percentile(p)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHeatmap(t *testing.T) {
	h := NewHeatmap(3)
	h.Sample(0, []float64{0.1, 0.2, 0.3})
	h.Sample(10, []float64{0.3, 0.4, 0.5})
	if got := h.MeanOverall(); math.Abs(got-0.3) > 1e-12 {
		t.Fatalf("overall mean %v", got)
	}
	if got := h.MeanAt(9); math.Abs(got-0.4) > 1e-12 {
		t.Fatalf("MeanAt(9) = %v, want column at t=10", got)
	}
	rm := h.RowMeans()
	if math.Abs(rm[0]-0.2) > 1e-12 || math.Abs(rm[2]-0.4) > 1e-12 {
		t.Fatalf("row means %v", rm)
	}
}

func TestHeatmapPanicsOnBadRow(t *testing.T) {
	h := NewHeatmap(2)
	defer func() {
		if recover() == nil {
			t.Fatal("wrong-size sample accepted")
		}
	}()
	h.Sample(0, []float64{1})
}

func TestTargetTracker(t *testing.T) {
	tr := NewTargetTracker()
	tr.Record("a", 0.5)
	tr.Record("b", 1.2)
	tr.Record("c", 0.9)
	tr.Record("a", 0.6) // overwrite keeps one entry
	if tr.N() != 3 {
		t.Fatalf("N = %d", tr.N())
	}
	s := tr.Sorted()
	if s[0] != 0.6 || s[2] != 1.2 {
		t.Fatalf("sorted %v", s)
	}
	if got := tr.Mean(1.0); math.Abs(got-(0.6+1.0+0.9)/3) > 1e-12 {
		t.Fatalf("capped mean %v", got)
	}
	if got := tr.Mean(0); math.Abs(got-(0.6+1.2+0.9)/3) > 1e-12 {
		t.Fatalf("uncapped mean %v", got)
	}
	if got := tr.FractionMeeting(0.9); math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("FractionMeeting %v", got)
	}
}
