package metrics

import "encoding/json"

// JSON marshalling for the measurement containers. The wire shapes are
// explicit DTO structs (field order is the declaration order, so output is
// byte-stable) and round-trip: Unmarshal(Marshal(x)) reproduces x's
// observable state. The obs exporters embed these in JSONL logs and decode
// them back in analysis tooling.

// seriesJSON is the wire shape of a Series.
type seriesJSON struct {
	Name  string    `json:"name"`
	Times []float64 `json:"times"`
	Vals  []float64 `json:"vals"`
}

// MarshalJSON implements json.Marshaler.
func (s *Series) MarshalJSON() ([]byte, error) {
	return json.Marshal(seriesJSON{Name: s.Name, Times: s.Times, Vals: s.Vals})
}

// UnmarshalJSON implements json.Unmarshaler.
func (s *Series) UnmarshalJSON(data []byte) error {
	var w seriesJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	s.Name, s.Times, s.Vals = w.Name, w.Times, w.Vals
	return nil
}

// distributionJSON is the wire shape of a Distribution. Samples are written
// in their current storage order; a Distribution that has answered a
// percentile query stores them sorted, which is itself deterministic.
type distributionJSON struct {
	Vals []float64 `json:"vals"`
}

// MarshalJSON implements json.Marshaler.
func (d *Distribution) MarshalJSON() ([]byte, error) {
	return json.Marshal(distributionJSON{Vals: d.vals})
}

// UnmarshalJSON implements json.Unmarshaler.
func (d *Distribution) UnmarshalJSON(data []byte) error {
	var w distributionJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	d.vals = w.Vals
	d.sorted = false
	return nil
}

// histogramJSON is the wire shape of a Histogram. Buckets are stored as the
// sorted parallel index/count slices, so output is byte-stable and
// Unmarshal(Marshal(h)) reproduces h's observable state exactly.
type histogramJSON struct {
	RelErr float64  `json:"rel_err"`
	Idx    []int32  `json:"idx"`
	Cnt    []uint64 `json:"cnt"`
	Zero   uint64   `json:"zero"`
	Count  uint64   `json:"count"`
	Min    float64  `json:"min"`
	Max    float64  `json:"max"`
}

// MarshalJSON implements json.Marshaler.
func (h *Histogram) MarshalJSON() ([]byte, error) {
	return json.Marshal(histogramJSON{
		RelErr: h.alpha, Idx: h.idx, Cnt: h.cnt,
		Zero: h.zero, Count: h.count, Min: h.min, Max: h.max,
	})
}

// UnmarshalJSON implements json.Unmarshaler.
func (h *Histogram) UnmarshalJSON(data []byte) error {
	var w histogramJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	h.alpha = w.RelErr
	h.idx, h.cnt = w.Idx, w.Cnt
	h.zero, h.count, h.min, h.max = w.Zero, w.Count, w.Min, w.Max
	if h.alpha > 0 && h.alpha < 1 {
		h.derive()
	}
	return nil
}

// heatmapJSON is the wire shape of a Heatmap.
type heatmapJSON struct {
	Rows  int         `json:"rows"`
	Times []float64   `json:"times"`
	Cells [][]float64 `json:"cells"`
}

// MarshalJSON implements json.Marshaler.
func (h *Heatmap) MarshalJSON() ([]byte, error) {
	return json.Marshal(heatmapJSON{Rows: h.Rows, Times: h.Times, Cells: h.Cells})
}

// UnmarshalJSON implements json.Unmarshaler.
func (h *Heatmap) UnmarshalJSON(data []byte) error {
	var w heatmapJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	h.Rows, h.Times, h.Cells = w.Rows, w.Times, w.Cells
	return nil
}
