package metrics

import (
	"fmt"
	"math"
)

// Histogram is a bounded-memory log-linear streaming histogram in the
// DDSketch family: positive values land in geometric buckets whose
// boundaries grow by a factor gamma = (1+alpha)/(1-alpha), so any quantile
// is answered with relative error at most alpha using O(buckets) memory —
// for alpha = 1% roughly one bucket per 2% of dynamic range, a few hundred
// buckets for latencies spanning microseconds to hours. This replaces
// unbounded per-sample retention where only quantiles are needed (p99
// tracking, SLO budget math).
//
// Determinism contract. Buckets are kept as parallel sorted slices, never a
// map, so every walk (quantiles, serialization, merges) runs in index order.
// Merging adds integer bucket counts, which is exactly associative and
// commutative: merging shard histograms in any grouping yields byte-identical
// serialized state, mirroring the Shards/Merge discipline of internal/obs.
type Histogram struct {
	alpha   float64 // quantile relative-error bound
	gamma   float64 // bucket growth factor (1+alpha)/(1-alpha)
	lnGamma float64

	idx []int32  // sorted bucket indices: bucket i covers (gamma^(i-1), gamma^i]
	cnt []uint64 // cnt[k] samples in bucket idx[k]

	zero  uint64 // samples <= 0 (no log bucket; reported as 0)
	count uint64
	min   float64
	max   float64
}

// DefaultHistogramError is the relative-error bound used when none is given.
const DefaultHistogramError = 0.01

// NewHistogram returns an empty histogram with the given quantile
// relative-error bound (0 < relErr < 1); relErr <= 0 selects
// DefaultHistogramError.
func NewHistogram(relErr float64) *Histogram {
	if relErr <= 0 {
		relErr = DefaultHistogramError
	}
	if relErr >= 1 {
		panic(fmt.Sprintf("metrics: histogram relative error %v out of (0,1)", relErr))
	}
	h := &Histogram{alpha: relErr}
	h.derive()
	return h
}

// derive fills the cached gamma terms from alpha.
func (h *Histogram) derive() {
	h.gamma = (1 + h.alpha) / (1 - h.alpha)
	h.lnGamma = math.Log(h.gamma)
}

// RelativeError returns the configured quantile relative-error bound.
func (h *Histogram) RelativeError() float64 { return h.alpha }

// bucketOf maps a positive value to its bucket index: the smallest i with
// gamma^i >= v.
func (h *Histogram) bucketOf(v float64) int32 {
	return int32(math.Ceil(math.Log(v) / h.lnGamma))
}

// valueOf returns the representative value of a bucket: the point of the
// interval (gamma^(i-1), gamma^i] whose worst-case relative error is
// minimized, 2*gamma^i/(gamma+1).
func (h *Histogram) valueOf(i int32) float64 {
	return 2 * math.Pow(h.gamma, float64(i)) / (h.gamma + 1)
}

// Add records one sample.
func (h *Histogram) Add(v float64) { h.AddN(v, 1) }

// AddN records the sample v with weight n (n identical samples).
func (h *Histogram) AddN(v float64, n int) {
	if n <= 0 {
		return
	}
	if h.lnGamma == 0 { //lint:allow(floatcmp) zero value: adopt the default error bound
		h.alpha = DefaultHistogramError
		h.derive()
	}
	w := uint64(n)
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count += w
	if v <= 0 {
		h.zero += w
		return
	}
	i := h.bucketOf(v)
	// Manual binary search: sort.Search's closure would allocate on every
	// observation.
	k, hi := 0, len(h.idx)
	for k < hi {
		mid := int(uint(k+hi) >> 1)
		if h.idx[mid] < i {
			k = mid + 1
		} else {
			hi = mid
		}
	}
	if k < len(h.idx) && h.idx[k] == i {
		h.cnt[k] += w
		return
	}
	h.idx = append(h.idx, 0)
	h.cnt = append(h.cnt, 0)
	copy(h.idx[k+1:], h.idx[k:])
	copy(h.cnt[k+1:], h.cnt[k:])
	h.idx[k], h.cnt[k] = i, w
}

// N returns the sample count.
func (h *Histogram) N() int { return int(h.count) }

// Buckets returns the number of occupied log buckets (memory is O(Buckets)).
func (h *Histogram) Buckets() int { return len(h.idx) }

// Mean returns the sample mean computed from bucket representatives, within
// RelativeError of the exact mean for positive samples (non-positive samples
// contribute 0). NaN when empty. It is derived purely from the integer
// bucket state in index order, so it is byte-identical across any merge
// grouping — a running float sum would not be.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return math.NaN()
	}
	sum := 0.0
	for k := range h.idx {
		sum += float64(h.cnt[k]) * h.valueOf(h.idx[k])
	}
	return sum / float64(h.count)
}

// Min returns the exact smallest sample, or NaN when empty.
func (h *Histogram) Min() float64 {
	if h.count == 0 {
		return math.NaN()
	}
	return h.min
}

// Max returns the exact largest sample, or NaN when empty.
func (h *Histogram) Max() float64 {
	if h.count == 0 {
		return math.NaN()
	}
	return h.max
}

// Percentile returns the p-th percentile (0..100) by nearest rank over the
// bucket counts, or NaN when empty. The result is within RelativeError of
// the exact nearest-rank sample percentile. The extremes are exact: p<=0
// returns Min, p>=100 returns Max.
func (h *Histogram) Percentile(p float64) float64 {
	if h.count == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return h.min
	}
	if p >= 100 {
		return h.max
	}
	rank := uint64(math.Ceil(p / 100 * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	if rank <= h.zero {
		return 0
	}
	seen := h.zero
	for k := range h.idx {
		seen += h.cnt[k]
		if seen >= rank {
			v := h.valueOf(h.idx[k])
			// The top bucket's representative can overshoot the true maximum;
			// quantiles never exceed the observed extremes.
			if v > h.max {
				v = h.max
			}
			if v < h.min {
				v = h.min
			}
			return v
		}
	}
	return h.max
}

// FractionBelow returns the fraction of samples <= bound, with bucket
// resolution (exact at bucket boundaries, within the relative-error band
// elsewhere).
func (h *Histogram) FractionBelow(bound float64) float64 {
	if h.count == 0 {
		return 0
	}
	below := uint64(0)
	if bound >= 0 {
		below = h.zero
	}
	if bound > 0 {
		bi := h.bucketOf(bound)
		for k := range h.idx {
			if h.idx[k] > bi {
				break
			}
			below += h.cnt[k]
		}
	}
	return float64(below) / float64(h.count)
}

// Merge folds other into h. Histograms must share the same relative-error
// bound (bucket boundaries must line up); merging an empty histogram is a
// no-op. Bucket counts add, so merging is exactly associative and
// commutative — any grouping of shard merges produces identical state.
func (h *Histogram) Merge(other *Histogram) error {
	if other == nil || other.count == 0 {
		return nil
	}
	if h.lnGamma == 0 { //lint:allow(floatcmp) zero value: adopt the peer's error bound
		h.alpha = other.alpha
		h.derive()
	}
	if h.alpha != other.alpha { //lint:allow(floatcmp) configured constants compared for identity
		return fmt.Errorf("metrics: merging histograms with different error bounds (%v vs %v)",
			h.alpha, other.alpha)
	}
	if h.count == 0 || other.min < h.min {
		h.min = other.min
	}
	if h.count == 0 || other.max > h.max {
		h.max = other.max
	}
	h.count += other.count
	h.zero += other.zero
	// Merge the sorted index slices.
	mi := make([]int32, 0, len(h.idx)+len(other.idx))
	mc := make([]uint64, 0, len(h.cnt)+len(other.cnt))
	a, b := 0, 0
	for a < len(h.idx) || b < len(other.idx) {
		switch {
		case b >= len(other.idx) || (a < len(h.idx) && h.idx[a] < other.idx[b]):
			mi = append(mi, h.idx[a])
			mc = append(mc, h.cnt[a])
			a++
		case a >= len(h.idx) || other.idx[b] < h.idx[a]:
			mi = append(mi, other.idx[b])
			mc = append(mc, other.cnt[b])
			b++
		default:
			mi = append(mi, h.idx[a])
			mc = append(mc, h.cnt[a]+other.cnt[b])
			a++
			b++
		}
	}
	h.idx, h.cnt = mi, mc
	return nil
}
