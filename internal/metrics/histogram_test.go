package metrics

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"testing"
)

// relDiff returns |a-b| / max(|a|,|b|), 0 when both are ~0.
func relDiff(a, b float64) float64 {
	m := math.Max(math.Abs(a), math.Abs(b))
	if m == 0 {
		return 0
	}
	return math.Abs(a-b) / m
}

// sampleSets generates deterministic sample populations with very different
// shapes: uniform, log-normal (latency-like), heavy-tailed, and tiny.
func sampleSets(rng *rand.Rand) map[string][]float64 {
	uniform := make([]float64, 5000)
	for i := range uniform {
		uniform[i] = 1 + 999*rng.Float64()
	}
	logNormal := make([]float64, 5000)
	for i := range logNormal {
		logNormal[i] = math.Exp(5 + 1.5*rng.NormFloat64())
	}
	heavy := make([]float64, 5000)
	for i := range heavy {
		heavy[i] = 100 / math.Pow(rng.Float64(), 1.2) // Pareto-ish tail
	}
	return map[string][]float64{
		"uniform":   uniform,
		"lognormal": logNormal,
		"heavy":     heavy,
		"tiny":      {3, 1, 4, 1, 5, 9, 2, 6},
		"constant":  {42, 42, 42, 42},
	}
}

// TestHistogramQuantilesBoundedError is the property test of the streaming
// histogram: for every population shape and every probed percentile, the
// histogram's answer must be within the configured relative-error bound of
// the exact sorted-sample nearest-rank percentile.
func TestHistogramQuantilesBoundedError(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	percentiles := []float64{0, 1, 5, 10, 25, 50, 75, 90, 95, 99, 99.9, 100}
	for _, relErr := range []float64{0.005, 0.01, 0.05} {
		for name, vals := range sampleSets(rng) {
			h := NewHistogram(relErr)
			var exact Distribution
			for _, v := range vals {
				h.Add(v)
				exact.Add(v)
			}
			if h.N() != exact.N() {
				t.Fatalf("%s/alpha=%v: histogram holds %d samples, want %d", name, relErr, h.N(), exact.N())
			}
			for _, p := range percentiles {
				got, want := h.Percentile(p), exact.Percentile(p)
				// Nearest-rank picks a sample; the histogram answers within
				// alpha of *some* sample in the same bucket, so allow the
				// bound plus a hair of float slack.
				if d := relDiff(got, want); d > relErr+1e-9 {
					t.Errorf("%s/alpha=%v: p%v = %v, exact %v (rel diff %.4f > %.4f)",
						name, relErr, p, got, want, d, relErr)
				}
			}
			if g, w := h.Mean(), exact.Mean(); relDiff(g, w) > relErr {
				t.Errorf("%s/alpha=%v: mean %v, exact %v (bucket-representative mean exceeds error bound)", name, relErr, g, w)
			}
			if g, w := h.Max(), exact.Max(); g != w {
				t.Errorf("%s/alpha=%v: max %v, exact %v (max is tracked exactly)", name, relErr, g, w)
			}
		}
	}
}

// TestHistogramBoundedMemory checks the point of the structure: millions of
// distinct samples across nine decades of dynamic range occupy only
// O(log(range)/alpha) buckets.
func TestHistogramBoundedMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	h := NewHistogram(0.01)
	for i := 0; i < 200_000; i++ {
		h.Add(math.Exp(rng.Float64()*20 - 5)) // ~e^-5 .. e^15
	}
	// ln(e^20)/ln(gamma) with gamma ~ 1.0202 is ~1000 buckets.
	if h.Buckets() > 1100 {
		t.Fatalf("histogram grew to %d buckets; log-linear bucketing should cap near 1000", h.Buckets())
	}
	if h.N() != 200_000 {
		t.Fatalf("count %d, want 200000", h.N())
	}
}

// TestHistogramZeroAndNegative pins the non-positive sample path: they count
// toward ranks but report as 0.
func TestHistogramZeroAndNegative(t *testing.T) {
	h := NewHistogram(0.01)
	h.Add(0)
	h.Add(-3)
	h.Add(10)
	h.Add(10)
	if got := h.Percentile(25); got != 0 {
		t.Fatalf("p25 over {-3,0,10,10} = %v, want 0 (non-positive bucket)", got)
	}
	if got := h.Percentile(99); relDiff(got, 10) > 0.01 {
		t.Fatalf("p99 = %v, want ~10", got)
	}
	if got := h.Min(); got != -3 {
		t.Fatalf("min %v, want -3", got)
	}
}

// serialize renders a histogram's full observable state.
func serialize(t *testing.T, h *Histogram) []byte {
	t.Helper()
	b, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestHistogramMergeAssociativeAcrossShards is the shard-discipline test:
// splitting one sample stream across shards and merging the shard
// histograms — pairwise, left-folded, or in one pass — must yield state
// byte-identical to the sequential histogram, whatever the grouping.
func TestHistogramMergeAssociativeAcrossShards(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	vals := make([]float64, 9000)
	for i := range vals {
		vals[i] = math.Exp(4 + 2*rng.NormFloat64())
	}
	sequential := NewHistogram(0.01)
	for _, v := range vals {
		sequential.Add(v)
	}
	want := serialize(t, sequential)

	for _, shards := range []int{2, 3, 4, 7, 16} {
		parts := make([]*Histogram, shards)
		for i := range parts {
			parts[i] = NewHistogram(0.01)
		}
		for i, v := range vals {
			parts[i%shards].Add(v) // round-robin, like a worker fan-out
		}
		// Grouping 1: left fold in shard order.
		left := NewHistogram(0.01)
		for _, p := range parts {
			if err := left.Merge(p); err != nil {
				t.Fatal(err)
			}
		}
		// Grouping 2: balanced pairwise tree.
		tree := make([]*Histogram, shards)
		for i, p := range parts {
			c := NewHistogram(0.01)
			if err := c.Merge(p); err != nil {
				t.Fatal(err)
			}
			tree[i] = c
		}
		for len(tree) > 1 {
			var next []*Histogram
			for i := 0; i < len(tree); i += 2 {
				if i+1 < len(tree) {
					if err := tree[i].Merge(tree[i+1]); err != nil {
						t.Fatal(err)
					}
				}
				next = append(next, tree[i])
			}
			tree = next
		}
		// Grouping 3: reverse shard order.
		rev := NewHistogram(0.01)
		for i := len(parts) - 1; i >= 0; i-- {
			if err := rev.Merge(parts[i]); err != nil {
				t.Fatal(err)
			}
		}
		for name, got := range map[string]*Histogram{"left-fold": left, "pairwise": tree[0], "reverse": rev} {
			if b := serialize(t, got); !bytes.Equal(b, want) {
				t.Fatalf("%d shards, %s merge: state diverged from sequential\n got: %s\nwant: %s",
					shards, name, b, want)
			}
		}
	}
}

// TestHistogramMergeErrorBoundMismatch rejects merging incompatible bucket
// layouts.
func TestHistogramMergeErrorBoundMismatch(t *testing.T) {
	a, b := NewHistogram(0.01), NewHistogram(0.02)
	b.Add(1)
	if err := a.Merge(b); err == nil {
		t.Fatal("merging histograms with different error bounds must fail")
	}
}

// TestHistogramJSONRoundTrip checks Unmarshal(Marshal(h)) reproduces the
// observable state, including quantile answers.
func TestHistogramJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	h := NewHistogram(0.01)
	for i := 0; i < 1000; i++ {
		h.Add(math.Exp(3 * rng.NormFloat64()))
	}
	b := serialize(t, h)
	var back Histogram
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, serialize(t, &back)) {
		t.Fatal("histogram JSON round trip changed state")
	}
	for _, p := range []float64{1, 50, 99} {
		if g, w := back.Percentile(p), h.Percentile(p); g != w {
			t.Fatalf("p%v after round trip = %v, want %v", p, g, w)
		}
	}
}
