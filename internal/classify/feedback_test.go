package classify

import (
	"math"
	"testing"

	"quasar/internal/cluster"
	"quasar/internal/sim"
	"quasar/internal/workload"
)

func TestCorrectWithAdjustsHetero(t *testing.T) {
	e, u := testSetup(t, 2)
	w := u.New(workload.Spec{Type: workload.Hadoop, Family: -1, MaxNodes: 4})
	es := e.Classify(w, NewGroundTruthProber(w, e.Platforms, sim.NewRNG(5)))

	nodes := []NodeChoice{{PlatformIdx: 7,
		Alloc: cluster.Alloc{Cores: 12, MemoryGB: 24}}}
	est := es.JobPerf(nodes)
	before := es.HetLog[7]
	// Observe half the estimated performance: the platform estimate must
	// fall.
	c := es.CorrectWith(est*0.5, nodes)
	if c >= 1 {
		t.Fatalf("correction factor %v, want < 1", c)
	}
	if es.HetLog[7] >= before {
		t.Fatal("HetLog not reduced by negative feedback")
	}
	// And the engine matrix received the feedback.
	row, _ := e.RowOf(w.ID)
	if v, ok := e.axes[AxisHetero].mat.Get(row, 7); !ok {
		t.Fatal("feedback not written to the matrix")
	} else if math.Abs(v-es.HetLog[7]) > 1e-9 {
		t.Fatalf("matrix value %v != estimate %v", v, es.HetLog[7])
	}
}

func TestCorrectWithinNoiseBandIsNoop(t *testing.T) {
	e, u := testSetup(t, 2)
	w := u.New(workload.Spec{Type: workload.Hadoop, Family: -1, MaxNodes: 4})
	es := e.Classify(w, NewGroundTruthProber(w, e.Platforms, sim.NewRNG(5)))
	nodes := []NodeChoice{{PlatformIdx: 9, Alloc: cluster.Alloc{Cores: 24, MemoryGB: 48}}}
	est := es.JobPerf(nodes)
	before := es.HetLog[9]
	if c := es.CorrectWith(est*1.02, nodes); c != 1 {
		t.Fatalf("in-band correction applied: %v", c)
	}
	if es.HetLog[9] != before {
		t.Fatal("estimate changed inside the noise band")
	}
}

func TestCorrectWithClamps(t *testing.T) {
	e, u := testSetup(t, 2)
	w := u.New(workload.Spec{Type: workload.Hadoop, Family: -1, MaxNodes: 4})
	es := e.Classify(w, NewGroundTruthProber(w, e.Platforms, sim.NewRNG(5)))
	nodes := []NodeChoice{{PlatformIdx: 3, Alloc: cluster.Alloc{Cores: 8, MemoryGB: 16}}}
	est := es.JobPerf(nodes)
	if c := es.CorrectWith(est*100, nodes); c > 4 {
		t.Fatalf("correction not clamped: %v", c)
	}
	if c := es.CorrectWith(est*1e-6, nodes); c < 0.25 {
		t.Fatalf("correction not clamped low: %v", c)
	}
	// Degenerate inputs are no-ops.
	if c := es.CorrectWith(0, nodes); c != 1 {
		t.Fatal("zero measurement should be ignored")
	}
	if c := es.CorrectWith(10, nil); c != 1 {
		t.Fatal("empty assignment should be ignored")
	}
}

func TestRetrainAllAndExhaustiveRetrain(t *testing.T) {
	e, u := testSetup(t, 2)
	e.RetrainAll() // must not panic and must leave models usable
	w := u.New(workload.Spec{Type: workload.Hadoop, Family: -1, MaxNodes: 4})
	es := e.Classify(w, NewGroundTruthProber(w, e.Platforms, sim.NewRNG(6)))
	if es == nil {
		t.Fatal("classify failed after retrain")
	}

	x := NewExhaustive(e.Platforms, 8, DefaultOptions().CF, sim.NewRNG(7))
	w2 := u.New(workload.Spec{Type: workload.Hadoop, Family: -1, MaxNodes: 4})
	x.Seed(w2, NewGroundTruthProber(w2, e.Platforms, sim.NewRNG(8)))
	x.Retrain()
	w3 := u.New(workload.Spec{Type: workload.Hadoop, Family: -1, MaxNodes: 4})
	row := x.Classify(w3, NewGroundTruthProber(w3, e.Platforms, sim.NewRNG(9)), 4)
	if len(row) != x.NumColumns() {
		t.Fatal("classification after retrain has wrong width")
	}
}

func TestBetaWeightsObservedPoints(t *testing.T) {
	// A superlinear job must yield a superlinear beta estimate when its
	// observed scale-out point says so, even if the library mean is
	// sublinear.
	e, u := testSetup(t, 3)
	w := u.New(workload.Spec{Type: workload.Storm, Family: -1, MaxNodes: 4})
	w.Genome.Beta = 1.15
	es := e.Classify(w, NewGroundTruthProber(w, e.Platforms, nil)) // noise-free probes
	if es.Beta() < 1.0 {
		t.Fatalf("beta estimate %.2f for a beta=1.15 workload", es.Beta())
	}
}
