package classify

import (
	"math"
	"sort"

	"quasar/internal/cluster"
	"quasar/internal/par"
	"quasar/internal/sim"
	"quasar/internal/workload"
)

// ErrorStats summarizes a set of estimation errors the way Table 2 reports
// them: average, 90th percentile, and maximum.
type ErrorStats struct {
	Avg, P90, Max float64
	N             int
}

// Stats computes ErrorStats over raw errors.
func Stats(errs []float64) ErrorStats {
	if len(errs) == 0 {
		return ErrorStats{}
	}
	s := append([]float64(nil), errs...)
	sort.Float64s(s)
	sum := 0.0
	for _, e := range s {
		sum += e
	}
	idx := int(math.Ceil(0.9*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	return ErrorStats{
		Avg: sum / float64(len(s)),
		P90: s[idx],
		Max: s[len(s)-1],
		N:   len(s),
	}
}

// Merge pools several error sets.
func Merge(all ...[]float64) []float64 {
	var out []float64
	for _, e := range all {
		out = append(out, e...)
	}
	return out
}

// relErr returns |est-true|/true, guarding tiny denominators.
func relErr(est, truth float64) float64 {
	if truth < 1e-9 {
		if est < 1e-9 {
			return 0
		}
		return 1
	}
	return math.Abs(est-truth) / truth
}

// ValidationErrors holds per-axis error samples for one workload: the
// deviation between classification estimates and detailed ground-truth
// characterization over every column.
type ValidationErrors struct {
	ScaleUp  []float64
	ScaleOut []float64
	Hetero   []float64
	Interf   []float64
}

// Validate classifies w with the engine (sparse profiling through prober)
// and compares the reconstructed rows against exhaustive noise-free
// characterization, column by column. This is the Table 2 measurement.
func Validate(e *Engine, w *workload.Instance) (*Estimates, ValidationErrors) {
	noisy := NewGroundTruthProber(w, e.Platforms, e.rng.Stream("probe/"+w.ID))
	es := e.Classify(w, noisy)
	truth := NewGroundTruthProber(w, e.Platforms, nil) // nil RNG: noise-free
	return es, CompareToTruth(es, w, truth)
}

// ValidateMany validates a batch of workloads with the profiling and
// comparison fanned out across workers. Per-workload RNG substreams are
// derived from the engine stream sequentially, in the same order the
// one-at-a-time Validate loop derives them, so the randomness — and with it
// the whole result — is identical for any worker count. Classification is
// detached: every workload folds in against the models as of the batch
// start, then the observations are appended in input order.
func ValidateMany(e *Engine, ws []*workload.Instance, workers int) ([]*Estimates, []ValidationErrors) {
	probeRNGs := make([]*sim.RNG, len(ws))
	classifyRNGs := make([]*sim.RNG, len(ws))
	for i, w := range ws {
		probeRNGs[i] = e.rng.Stream("probe/" + w.ID)
		classifyRNGs[i] = e.rng.Stream("classify/" + w.ID)
	}
	e.EnsureTrained()
	type result struct {
		es   *Estimates
		po   *ProbeObs
		errs ValidationErrors
	}
	results := par.ParMap(workers, len(ws), func(i int) result {
		w := ws[i]
		noisy := NewGroundTruthProber(w, e.Platforms, probeRNGs[i])
		es, po := e.ClassifyDetached(w, noisy, classifyRNGs[i])
		truth := NewGroundTruthProber(w, e.Platforms, nil)
		return result{es, po, CompareToTruth(es, w, truth)}
	})
	ess := make([]*Estimates, len(ws))
	errs := make([]ValidationErrors, len(ws))
	for i, r := range results {
		r.es.Row = e.Append(ws[i].ID, r.po)
		ess[i] = r.es
		errs[i] = r.errs
	}
	return ess, errs
}

// CompareToTruth computes per-column errors of estimates against a
// noise-free prober.
func CompareToTruth(es *Estimates, w *workload.Instance, truth *GroundTruthProber) ValidationErrors {
	var v ValidationErrors
	e := es.Engine

	// Columns where the true performance is negligible (a starved
	// allocation a scheduler would never pick — e.g. a service whose
	// QPS-at-QoS is ~0 at one core) produce unbounded *relative* errors
	// that say nothing about decision quality; skip them.
	refTruth := truth.ScaleUp(e.refAlloc())
	negligible := 0.02 * refTruth

	for j, col := range e.SUCols {
		tr := truth.ScaleUp(cluster.Alloc{Cores: col.Cores, MemoryGB: col.MemoryGB})
		if tr < negligible {
			continue
		}
		v.ScaleUp = append(v.ScaleUp, relErr(es.RefPerf*math.Exp(es.SULog[j]), tr))
	}
	if w.Type.Distributed() {
		alloc := e.profilingAlloc()
		for j, n := range e.SOCounts {
			tr := truth.ScaleOut(n, alloc)
			v.ScaleOut = append(v.ScaleOut, relErr(math.Exp(es.SOLog[j]), tr))
		}
	}
	for j := range e.Platforms {
		tr := truth.Heterogeneity(j)
		if tr < negligible {
			continue
		}
		v.Hetero = append(v.Hetero, relErr(es.RefPerf*math.Exp(es.HetLog[j]), tr))
	}
	for r := 0; r < int(cluster.NumResources); r++ {
		trTol := truth.ToleratedIntensity(cluster.Resource(r))
		trCaused := truth.CausedIntensity(cluster.Resource(r))
		// Sensitivities live on a 0..1 intensity scale; absolute error on
		// that scale is the natural "% error".
		v.Interf = append(v.Interf, math.Abs(es.Tol[r]-trTol))
		v.Interf = append(v.Interf, math.Abs(es.Caused[r]-trCaused))
	}
	return v
}

// ValidateExhaustiveWith classifies w with the joint classifier using the
// given noisy prober and compares against noise-free truth.
func ValidateExhaustiveWith(x *Exhaustive, w *workload.Instance, noisy *GroundTruthProber, entries int) []float64 {
	row := x.Classify(w, noisy, entries)
	return compareExhaustive(x, w, row)
}

// ValidateExhaustiveMany is the batch form: detached joint classification
// fanned out across workers (per-workload streams derived in input order,
// fold-in against the frozen model), appends applied sequentially after.
func ValidateExhaustiveMany(x *Exhaustive, ws []*workload.Instance, noisy []*GroundTruthProber, entries, workers int) [][]float64 {
	rngs := make([]*sim.RNG, len(ws))
	for i, w := range ws {
		rngs[i] = x.rng.Stream("exhaustive/" + w.ID)
	}
	x.EnsureTrained()
	type result struct {
		errs []float64
		obs  map[int]float64
	}
	results := par.ParMap(workers, len(ws), func(i int) result {
		row, obs := x.ClassifyDetached(ws[i], noisy[i], entries, rngs[i])
		return result{compareExhaustive(x, ws[i], row), obs}
	})
	errs := make([][]float64, len(ws))
	for i, r := range results {
		x.Append(ws[i].ID, r.obs)
		errs[i] = r.errs
	}
	return errs
}

// compareExhaustive scores a reconstructed joint row against noise-free
// characterization over every valid, non-negligible column.
func compareExhaustive(x *Exhaustive, w *workload.Instance, row []float64) []float64 {
	truth := NewGroundTruthProber(w, x.Platforms, nil)
	// Reference scale for the negligible-column filter: the biggest
	// single-node configuration.
	refTruth := 0.0
	for _, col := range x.Cols {
		// CoreFrac values come from a fixed configuration grid, so the
		// full-machine column is exactly 1.0.
		if col.Nodes == 1 && col.CoreFrac == 1.0 { //lint:allow(floatcmp)
			if tr := truth.JointPerf(col.PlatformIdx, 1, col.Alloc(x.Platforms)); tr > refTruth {
				refTruth = tr
			}
		}
	}
	var errs []float64
	for j, col := range x.Cols {
		if col.Nodes > 1 && !w.Type.Distributed() {
			continue
		}
		tr := truth.JointPerf(col.PlatformIdx, col.Nodes, col.Alloc(x.Platforms))
		if tr < 0.02*refTruth {
			continue
		}
		errs = append(errs, relErr(math.Exp(row[j]), tr))
	}
	return errs
}
