// Package classify implements Quasar's classification engine (§3.2): four
// parallel collaborative-filtering classifications — scale-up, scale-out,
// heterogeneity, and interference (tolerated and caused) — plus the single
// exhaustive joint classification used as a comparison point in Table 2 and
// Figure 3.
//
// Each classification maintains a workload-by-configuration matrix. Rows
// accumulate as workloads are profiled; a small offline-profiled library
// seeds the matrices with dense rows. An arriving workload contributes a
// few profiling samples per axis; fold-in against the trained latent-factor
// model reconstructs its full row in milliseconds.
package classify

import (
	"fmt"
	"math"

	"quasar/internal/cluster"
)

// ScaleUpCol is one quantized scale-up configuration: cores and memory on
// the profiling (highest-end) platform. Framework parameters are implied:
// configured workloads are profiled with the tuned configuration for the
// column's cores and memory (see TunedConfig).
type ScaleUpCol struct {
	Cores    int
	MemoryGB float64
}

var coreGrid = []int{1, 2, 4, 6, 8, 12, 16, 20, 24, 32}
var memGrid = []float64{1, 2, 4, 8, 12, 16, 24, 32, 48, 64}

// ScaleUpColumns returns the quantized scale-up grid for the given
// profiling platform ("we quantize the vectors to integer multiples of
// cores and blocks of memory", §3.2).
func ScaleUpColumns(p *cluster.Platform) []ScaleUpCol {
	var out []ScaleUpCol
	for _, c := range coreGrid {
		if c > p.Cores {
			continue
		}
		for _, m := range memGrid {
			if m > p.MemoryGB {
				continue
			}
			out = append(out, ScaleUpCol{Cores: c, MemoryGB: m})
		}
	}
	return out
}

// NearestScaleUpCol returns the index of the column closest to the given
// allocation (log-distance in both dimensions).
func NearestScaleUpCol(cols []ScaleUpCol, alloc cluster.Alloc) int {
	best, bestD := 0, math.Inf(1)
	for i, c := range cols {
		d := math.Abs(math.Log(float64(c.Cores)/float64(alloc.Cores))) +
			math.Abs(math.Log(c.MemoryGB/alloc.MemoryGB))
		if d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

// ScaleOutCounts returns the node-count column grid up to maxNodes. The
// offline library is profiled densely over this grid ("exhaustively
// profiled ... against node counts 1 to 100"); online workloads are only
// profiled at one to four nodes.
func ScaleOutCounts(maxNodes int) []int {
	grid := []int{1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64, 80, 100}
	var out []int
	for _, n := range grid {
		if n <= maxNodes {
			out = append(out, n)
		}
	}
	if len(out) == 0 {
		out = []int{1}
	}
	return out
}

// NearestCountIdx returns the index of the closest node-count column.
func NearestCountIdx(counts []int, n int) int {
	best, bestD := 0, math.MaxInt
	for i, c := range counts {
		d := c - n
		if d < 0 {
			d = -d
		}
		if d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

// JointCol is one column of the exhaustive classification: a full
// allocation-assignment vector (platform, per-node scale-up, node count).
type JointCol struct {
	PlatformIdx int
	CoreFrac    float64 // fraction of the platform's cores
	Nodes       int
}

// JointColumns enumerates the exhaustive space. Its size is the product of
// the individual spaces — the reason the paper's four parallel
// classifications are both faster and (with very sparse input) more
// accurate.
func JointColumns(platforms []cluster.Platform, maxNodes int) []JointCol {
	fracs := []float64{0.25, 0.5, 0.75, 1.0}
	counts := ScaleOutCounts(maxNodes)
	var out []JointCol
	for pi := range platforms {
		for _, f := range fracs {
			if int(f*float64(platforms[pi].Cores)) < 1 {
				continue
			}
			for _, n := range counts {
				out = append(out, JointCol{PlatformIdx: pi, CoreFrac: f, Nodes: n})
			}
		}
	}
	return out
}

// Alloc returns the concrete per-node allocation of a joint column.
func (c JointCol) Alloc(platforms []cluster.Platform) cluster.Alloc {
	p := platforms[c.PlatformIdx]
	cores := int(c.CoreFrac * float64(p.Cores))
	if cores < 1 {
		cores = 1
	}
	return cluster.Alloc{Cores: cores, MemoryGB: c.CoreFrac * p.MemoryGB}
}

func (c JointCol) String() string {
	return fmt.Sprintf("p%d/%.0f%%x%d", c.PlatformIdx, c.CoreFrac*100, c.Nodes)
}
