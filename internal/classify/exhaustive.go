package classify

import (
	"quasar/internal/cf"
	"quasar/internal/cluster"
	"quasar/internal/sim"
	"quasar/internal/workload"
)

// JointProber measures performance for full allocation-assignment vectors,
// as the exhaustive classification requires.
type JointProber interface {
	// JointPerf measures performance on n nodes of the given platform with
	// the given per-node allocation.
	JointPerf(platformIdx, n int, alloc cluster.Alloc) float64
}

// JointPerf implements JointProber for the ground-truth prober.
func (p *GroundTruthProber) JointPerf(platformIdx, n int, alloc cluster.Alloc) float64 {
	return p.noise(p.perfAt(platformIdx, n, alloc, cluster.ResVec{}))
}

// Exhaustive is the single joint classification the paper compares against
// (§3.2, Table 2): one matrix whose columns are allocation-assignment
// vectors. Its column count is the product of the individual spaces, which
// makes per-arrival classification roughly two orders of magnitude slower
// and — at very low input density — less accurate on average, though better
// on pathological cross-axis cases.
type Exhaustive struct {
	Platforms []cluster.Platform
	Cols      []JointCol

	mat     *cf.Sparse
	model   *cf.Model
	cfOpts  cf.Options
	retrain int
	since   int
	rowOf   map[string]int
	rng     *sim.RNG
}

// NewExhaustive builds the joint classifier.
func NewExhaustive(platforms []cluster.Platform, maxNodes int, cfOpts cf.Options, rng *sim.RNG) *Exhaustive {
	cols := JointColumns(platforms, maxNodes)
	return &Exhaustive{
		Platforms: platforms,
		Cols:      cols,
		mat:       cf.NewSparse(0, len(cols)),
		cfOpts:    cfOpts,
		retrain:   25,
		rowOf:     make(map[string]int),
		rng:       rng,
	}
}

// NumColumns returns the size of the joint column space.
func (x *Exhaustive) NumColumns() int { return len(x.Cols) }

// Seed adds a densely profiled workload.
func (x *Exhaustive) Seed(w *workload.Instance, p JointProber) {
	obs := make(map[int]float64, len(x.Cols))
	for j, col := range x.Cols {
		if col.Nodes > 1 && !w.Type.Distributed() {
			continue
		}
		obs[j] = safeLog(p.JointPerf(col.PlatformIdx, col.Nodes, col.Alloc(x.Platforms)))
	}
	x.append(w.ID, obs)
}

func (x *Exhaustive) append(id string, obs map[int]float64) int {
	row := x.mat.AppendRow(obs)
	x.rowOf[id] = row
	x.since++
	if x.model == nil || x.since >= x.retrain {
		x.model = cf.Train(x.mat, x.cfOpts)
		x.since = 0
	}
	return row
}

// Retrain refits the joint model from scratch (the per-arrival cost of the
// exhaustive design).
func (x *Exhaustive) Retrain() {
	x.model = cf.Train(x.mat, x.cfOpts)
	x.since = 0
}

// Classify profiles the workload at entries random joint columns and
// reconstructs the full row (log performance per column).
func (x *Exhaustive) Classify(w *workload.Instance, p JointProber, entries int) []float64 {
	rng := x.rng.Stream("exhaustive/" + w.ID)
	valid := make([]int, 0, len(x.Cols))
	for j, col := range x.Cols {
		if col.Nodes > 1 && !w.Type.Distributed() {
			continue
		}
		valid = append(valid, j)
	}
	obs := make(map[int]float64, entries)
	for _, vi := range pickDistinct(rng, len(valid), entries) {
		j := valid[vi]
		col := x.Cols[j]
		obs[j] = safeLog(p.JointPerf(col.PlatformIdx, col.Nodes, col.Alloc(x.Platforms)))
	}
	x.append(w.ID, obs)
	if x.model == nil {
		x.model = cf.Train(x.mat, x.cfOpts)
		x.since = 0
	}
	row := x.model.FoldIn(obs)
	for j, v := range obs {
		row[j] = v
	}
	return row
}
