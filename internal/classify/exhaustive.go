package classify

import (
	"quasar/internal/cf"
	"quasar/internal/cluster"
	"quasar/internal/sim"
	"quasar/internal/workload"
)

// JointProber measures performance for full allocation-assignment vectors,
// as the exhaustive classification requires.
type JointProber interface {
	// JointPerf measures performance on n nodes of the given platform with
	// the given per-node allocation.
	JointPerf(platformIdx, n int, alloc cluster.Alloc) float64
}

// JointPerf implements JointProber for the ground-truth prober.
func (p *GroundTruthProber) JointPerf(platformIdx, n int, alloc cluster.Alloc) float64 {
	return p.noise(p.perfAt(platformIdx, n, alloc, cluster.ResVec{}))
}

// Exhaustive is the single joint classification the paper compares against
// (§3.2, Table 2): one matrix whose columns are allocation-assignment
// vectors. Its column count is the product of the individual spaces, which
// makes per-arrival classification roughly two orders of magnitude slower
// and — at very low input density — less accurate on average, though better
// on pathological cross-axis cases.
type Exhaustive struct {
	Platforms []cluster.Platform
	Cols      []JointCol

	mat     *cf.Sparse
	model   *cf.Model
	cfOpts  cf.Options
	retrain int
	since   int
	rowOf   map[string]int
	rng     *sim.RNG
}

// NewExhaustive builds the joint classifier.
func NewExhaustive(platforms []cluster.Platform, maxNodes int, cfOpts cf.Options, rng *sim.RNG) *Exhaustive {
	cols := JointColumns(platforms, maxNodes)
	return &Exhaustive{
		Platforms: platforms,
		Cols:      cols,
		mat:       cf.NewSparse(0, len(cols)),
		cfOpts:    cfOpts,
		retrain:   25,
		rowOf:     make(map[string]int),
		rng:       rng,
	}
}

// NumColumns returns the size of the joint column space.
func (x *Exhaustive) NumColumns() int { return len(x.Cols) }

// Seed adds a densely profiled workload.
func (x *Exhaustive) Seed(w *workload.Instance, p JointProber) {
	obs := make(map[int]float64, len(x.Cols))
	for j, col := range x.Cols {
		if col.Nodes > 1 && !w.Type.Distributed() {
			continue
		}
		obs[j] = safeLog(p.JointPerf(col.PlatformIdx, col.Nodes, col.Alloc(x.Platforms)))
	}
	x.append(w.ID, obs)
}

func (x *Exhaustive) append(id string, obs map[int]float64) int {
	row := x.mat.AppendRow(obs)
	x.rowOf[id] = row
	x.since++
	if x.model == nil || x.since >= x.retrain {
		x.model = cf.Train(x.mat, x.cfOpts)
		x.since = 0
	}
	return row
}

// Retrain refits the joint model from scratch (the per-arrival cost of the
// exhaustive design).
func (x *Exhaustive) Retrain() {
	x.model = cf.Train(x.mat, x.cfOpts)
	x.since = 0
}

// Classify profiles the workload at entries random joint columns and
// reconstructs the full row (log performance per column).
func (x *Exhaustive) Classify(w *workload.Instance, p JointProber, entries int) []float64 {
	obs := x.probe(w, p, entries, x.rng.Stream("exhaustive/"+w.ID))
	x.append(w.ID, obs)
	if x.model == nil {
		x.model = cf.Train(x.mat, x.cfOpts)
		x.since = 0
	}
	return x.foldIn(obs)
}

// EnsureTrained trains the joint model if rows exist but no model does, so a
// detached batch folds in against a frozen model instead of racing to train.
func (x *Exhaustive) EnsureTrained() {
	if x.model == nil && x.mat.Rows > 0 {
		x.model = cf.Train(x.mat, x.cfOpts)
		x.since = 0
	}
}

// ClassifyDetached probes and reconstructs without touching classifier
// state: the caller supplies the per-workload RNG (derived in input order
// before the fan-out) and later hands the returned observations to Append
// sequentially. Call EnsureTrained before fanning out.
func (x *Exhaustive) ClassifyDetached(w *workload.Instance, p JointProber, entries int, rng *sim.RNG) ([]float64, map[int]float64) {
	obs := x.probe(w, p, entries, rng)
	return x.foldIn(obs), obs
}

// Append adds a detached arrival's observations to the matrix; sequential,
// input order, after the fan-out.
func (x *Exhaustive) Append(id string, obs map[int]float64) {
	x.append(id, obs)
}

// probe samples entries random valid joint columns. Read-only on the
// classifier; workload mutation is confined to the prober.
func (x *Exhaustive) probe(w *workload.Instance, p JointProber, entries int, rng *sim.RNG) map[int]float64 {
	valid := make([]int, 0, len(x.Cols))
	for j, col := range x.Cols {
		if col.Nodes > 1 && !w.Type.Distributed() {
			continue
		}
		valid = append(valid, j)
	}
	obs := make(map[int]float64, entries)
	for _, vi := range pickDistinct(rng, len(valid), entries) {
		j := valid[vi]
		col := x.Cols[j]
		obs[j] = safeLog(p.JointPerf(col.PlatformIdx, col.Nodes, col.Alloc(x.Platforms)))
	}
	return obs
}

// foldIn reconstructs the full row from sparse observations against the
// current model (read-only; obs as the row when no model exists yet).
func (x *Exhaustive) foldIn(obs map[int]float64) []float64 {
	if x.model == nil {
		row := make([]float64, len(x.Cols))
		for j, v := range obs {
			row[j] = v
		}
		return row
	}
	row := x.model.FoldIn(obs)
	for j, v := range obs {
		row[j] = v
	}
	return row
}
