package classify

import (
	"quasar/internal/cluster"
	"quasar/internal/interference"
	"quasar/internal/perfmodel"
	"quasar/internal/sim"
	"quasar/internal/workload"
)

// Prober supplies profiling measurements for one workload. The engine
// decides *what* to probe; the prober decides *how* — against the ground-
// truth model directly (validation harnesses) or via sandboxed profiling
// runs that consume simulated time and server capacity (the runtime).
//
// All performance numbers are in the workload's own metric (work rate for
// batch, QPS-at-QoS for latency services), matching the paper: "profiling
// collects performance measurements in the format of each application's
// performance goal".
type Prober interface {
	// ScaleUp measures performance at the given allocation on the
	// profiling platform.
	ScaleUp(alloc cluster.Alloc) float64
	// ScaleOut measures the relative scaling factor rate(n)/rate(1) at n
	// nodes of the profiling platform with the given per-node allocation.
	ScaleOut(n int, alloc cluster.Alloc) float64
	// Heterogeneity measures whole-node performance on the given platform.
	Heterogeneity(platformIdx int) float64
	// ToleratedIntensity ramps a microbenchmark in resource r against the
	// workload and returns the tolerated intensity (see
	// interference.ProbeTolerance).
	ToleratedIntensity(r cluster.Resource) float64
	// CausedIntensity measures the pressure the workload itself exerts in
	// resource r at a reference allocation.
	CausedIntensity(r cluster.Resource) float64
}

// TunedConfig returns the framework parameters Quasar uses for a configured
// workload at a given allocation: one mapper per allocated core, heap sized
// to the memory share, gzip when the job is disk-bound (Table 3). Profiling
// runs use diskSensitive=false (lzo) before interference classification has
// run; the final assignment re-tunes with the classified sensitivity.
func TunedConfig(cores int, memGB float64, diskSensitive bool) workload.FrameworkConfig {
	heap := memGB * 0.75 / float64(cores)
	if heap < 0.5 {
		heap = 0.5
	}
	if heap > 1.5 {
		heap = 1.5
	}
	comp := workload.CompressionLZO
	if diskSensitive {
		comp = workload.CompressionGzip
	}
	return workload.FrameworkConfig{
		MappersPerNode: cores,
		HeapsizeGB:     heap,
		BlockSizeMB:    64,
		Replication:    2,
		Compression:    comp,
	}
}

// GroundTruthProber measures straight against the hidden genome with
// realistic measurement noise. It stands in for the sandboxed profiling
// runs of §4.2: short runs observe the true performance surface plus noise.
type GroundTruthProber struct {
	W         *workload.Instance
	Platforms []cluster.Platform
	// ProfilingPlatform is the index used for scale-up/scale-out probes
	// (the highest-end platform per the paper).
	ProfilingPlatform int
	RNG               *sim.RNG
	// NoiseCV overrides the genome's measurement noise when positive.
	NoiseCV float64
}

// NewGroundTruthProber builds a prober for w over the platform set.
func NewGroundTruthProber(w *workload.Instance, platforms []cluster.Platform, rng *sim.RNG) *GroundTruthProber {
	return &GroundTruthProber{
		W:                 w,
		Platforms:         platforms,
		ProfilingPlatform: cluster.HighestEnd(platforms),
		RNG:               rng,
	}
}

func (p *GroundTruthProber) noise(x float64) float64 {
	cv := p.NoiseCV
	if cv <= 0 {
		cv = p.W.Genome.NoiseCV
	}
	if p.RNG == nil {
		return x
	}
	return p.RNG.Jitter(x, cv)
}

// perfAt returns the workload's true performance metric for the allocation.
func (p *GroundTruthProber) perfAt(platformIdx, n int, alloc cluster.Alloc, pressure cluster.ResVec) float64 {
	plat := &p.Platforms[platformIdx]
	w := p.W

	// Configured workloads are profiled with the tuned configuration for
	// this allocation.
	origCfg := w.Config
	if origCfg != nil {
		cfg := TunedConfig(alloc.Cores, alloc.MemoryGB, false)
		w.Config = &cfg
		defer func() { w.Config = origCfg }()
	}

	nodes := make([]perfmodel.NodeAlloc, n)
	for i := range nodes {
		nodes[i] = perfmodel.NodeAlloc{Platform: plat, Alloc: alloc, Pressure: pressure}
	}
	rate := w.JobRate(nodes)
	if w.Type.Class() == perfmodel.LatencyCritical {
		capQPS := rate * w.Genome.QPSPerUnit
		bound := w.Target.LatencyUS
		if bound <= 0 {
			bound = w.Genome.ServiceUS * 4
		}
		return w.Genome.QPSAtQoS(capQPS, bound)
	}
	return rate
}

// ScaleUp implements Prober.
func (p *GroundTruthProber) ScaleUp(alloc cluster.Alloc) float64 {
	return p.noise(p.perfAt(p.ProfilingPlatform, 1, alloc, cluster.ResVec{}))
}

// ScaleOut implements Prober.
func (p *GroundTruthProber) ScaleOut(n int, alloc cluster.Alloc) float64 {
	one := p.perfAt(p.ProfilingPlatform, 1, alloc, cluster.ResVec{})
	if one <= 0 {
		return 0
	}
	return p.noise(p.perfAt(p.ProfilingPlatform, n, alloc, cluster.ResVec{}) / one)
}

// Heterogeneity implements Prober.
func (p *GroundTruthProber) Heterogeneity(platformIdx int) float64 {
	plat := &p.Platforms[platformIdx]
	alloc := cluster.Alloc{Cores: plat.Cores, MemoryGB: plat.MemoryGB}
	return p.noise(p.perfAt(platformIdx, 1, alloc, cluster.ResVec{}))
}

// ToleratedIntensity implements Prober: it ramps a single-resource
// microbenchmark against the workload at a mid-size allocation on the
// profiling platform.
func (p *GroundTruthProber) ToleratedIntensity(r cluster.Resource) float64 {
	plat := &p.Platforms[p.ProfilingPlatform]
	alloc := cluster.Alloc{Cores: maxInt(1, plat.Cores/2), MemoryGB: plat.MemoryGB / 2}
	measure := func(extra cluster.ResVec) float64 {
		return p.perfAt(p.ProfilingPlatform, 1, alloc, extra)
	}
	tol := interference.ProbeTolerance(measure, r, interference.DefaultQoSDrop, 20)
	return p.noise(tol)
}

// CausedIntensity implements Prober: the true pressure the workload exerts
// in resource r at a half-node allocation on the profiling platform.
func (p *GroundTruthProber) CausedIntensity(r cluster.Resource) float64 {
	plat := &p.Platforms[p.ProfilingPlatform]
	alloc := cluster.Alloc{Cores: maxInt(1, plat.Cores/2), MemoryGB: plat.MemoryGB / 2}
	return p.noise(p.W.CausedPressure(plat, alloc)[r])
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
