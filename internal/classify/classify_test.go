package classify

import (
	"math"
	"testing"

	"quasar/internal/cluster"
	"quasar/internal/perfmodel"
	"quasar/internal/sim"
	"quasar/internal/workload"
)

// testSetup builds an engine seeded with an offline library, plus the
// universe generating workloads.
func testSetup(t testing.TB, seedPerType int) (*Engine, *workload.Universe) {
	t.Helper()
	platforms := cluster.LocalPlatforms()
	u := workload.NewUniverse(platforms, 7, 3)
	opts := DefaultOptions()
	opts.MaxNodes = 32
	e := NewEngine(platforms, opts, sim.NewRNG(99))
	types := []workload.Type{workload.Hadoop, workload.Spark, workload.Storm,
		workload.Memcached, workload.Cassandra, workload.Webserver, workload.SingleNode}
	for _, tp := range types {
		for i := 0; i < seedPerType; i++ {
			w := u.New(workload.Spec{Type: tp, Family: -1, MaxNodes: 4})
			p := NewGroundTruthProber(w, platforms, sim.NewRNG(int64(1000+i)))
			e.SeedOffline(w, p)
		}
	}
	return e, u
}

func TestScaleUpColumnsQuantized(t *testing.T) {
	p := cluster.LocalPlatforms()[9] // J: 24 cores, 48 GB
	cols := ScaleUpColumns(&p)
	if len(cols) == 0 {
		t.Fatal("no scale-up columns")
	}
	for _, c := range cols {
		if c.Cores > p.Cores || c.MemoryGB > p.MemoryGB {
			t.Fatalf("column %+v exceeds platform", c)
		}
	}
	// Whole-node column must exist.
	j := NearestScaleUpCol(cols, cluster.Alloc{Cores: 24, MemoryGB: 48})
	if cols[j].Cores != 24 || cols[j].MemoryGB != 48 {
		t.Fatalf("whole-node column missing, nearest %+v", cols[j])
	}
}

func TestNearestScaleUpCol(t *testing.T) {
	p := cluster.LocalPlatforms()[9]
	cols := ScaleUpColumns(&p)
	j := NearestScaleUpCol(cols, cluster.Alloc{Cores: 5, MemoryGB: 10})
	if cols[j].Cores < 4 || cols[j].Cores > 6 {
		t.Fatalf("nearest to 5 cores is %+v", cols[j])
	}
}

func TestScaleOutCounts(t *testing.T) {
	c := ScaleOutCounts(100)
	if c[0] != 1 || c[len(c)-1] != 100 {
		t.Fatalf("counts %v", c)
	}
	small := ScaleOutCounts(4)
	if len(small) != 4 {
		t.Fatalf("counts up to 4: %v", small)
	}
	if got := ScaleOutCounts(0); len(got) != 1 || got[0] != 1 {
		t.Fatalf("degenerate counts: %v", got)
	}
	if idx := NearestCountIdx(c, 50); c[idx] != 48 {
		t.Fatalf("nearest count to 50 = %d", c[idx])
	}
}

func TestJointColumnsSize(t *testing.T) {
	platforms := cluster.LocalPlatforms()
	cols := JointColumns(platforms, 8)
	// platforms x fractions x counts, minus fractions that round to zero
	// cores on small platforms.
	counts := ScaleOutCounts(8)
	want := 0
	for _, p := range platforms {
		for _, f := range []float64{0.25, 0.5, 0.75, 1.0} {
			if int(f*float64(p.Cores)) >= 1 {
				want += len(counts)
			}
		}
	}
	if len(cols) != want {
		t.Fatalf("%d joint columns, want %d", len(cols), want)
	}
	for _, c := range cols {
		al := c.Alloc(platforms)
		if al.Cores < 1 || al.MemoryGB <= 0 {
			t.Fatalf("bad alloc %+v from column %v", al, c)
		}
	}
}

func TestTunedConfig(t *testing.T) {
	cfg := TunedConfig(12, 12, false)
	if cfg.MappersPerNode != 12 {
		t.Fatalf("mappers %d, want one per core", cfg.MappersPerNode)
	}
	if math.Abs(cfg.HeapsizeGB-0.75) > 1e-9 {
		t.Fatalf("heap %v, want 0.75 (Table 3)", cfg.HeapsizeGB)
	}
	if cfg.Compression != workload.CompressionLZO {
		t.Fatal("non-disk-sensitive should use lzo")
	}
	if TunedConfig(12, 12, true).Compression != workload.CompressionGzip {
		t.Fatal("disk-sensitive should use gzip (Table 3)")
	}
	// Heap clamping.
	if TunedConfig(24, 4, false).HeapsizeGB != 0.5 {
		t.Fatal("heap floor not applied")
	}
	if TunedConfig(1, 48, false).HeapsizeGB != 1.5 {
		t.Fatal("heap cap not applied")
	}
}

func TestGroundTruthProberNoiseFree(t *testing.T) {
	platforms := cluster.LocalPlatforms()
	u := workload.NewUniverse(platforms, 11, 2)
	w := u.New(workload.Spec{Type: workload.Hadoop, Family: -1, MaxNodes: 4})
	p := NewGroundTruthProber(w, platforms, nil)
	a := p.ScaleUp(cluster.Alloc{Cores: 8, MemoryGB: 16})
	b := p.ScaleUp(cluster.Alloc{Cores: 8, MemoryGB: 16})
	if a != b {
		t.Fatal("noise-free prober not deterministic")
	}
	if a <= 0 {
		t.Fatal("non-positive measurement")
	}
}

func TestProberScaleOutRelative(t *testing.T) {
	platforms := cluster.LocalPlatforms()
	u := workload.NewUniverse(platforms, 11, 2)
	w := u.New(workload.Spec{Type: workload.Hadoop, Family: -1, MaxNodes: 4})
	p := NewGroundTruthProber(w, platforms, nil)
	r2 := p.ScaleOut(2, cluster.Alloc{Cores: 12, MemoryGB: 24})
	if r2 < 1 || r2 > 2.4 {
		t.Fatalf("2-node scaling ratio %v outside (1, 2.4)", r2)
	}
}

func TestProberLatencyMetricIsQPS(t *testing.T) {
	platforms := cluster.LocalPlatforms()
	u := workload.NewUniverse(platforms, 11, 2)
	w := u.New(workload.Spec{Type: workload.Memcached, Family: -1, MaxNodes: 4})
	p := NewGroundTruthProber(w, platforms, nil)
	perf := p.Heterogeneity(9)
	// QPS at QoS should be within the service's saturation capacity.
	plat := &platforms[9]
	cap := w.CapacityQPS([]perfmodel.NodeAlloc{{Platform: plat,
		Alloc: cluster.Alloc{Cores: plat.Cores, MemoryGB: plat.MemoryGB}}})
	if perf <= 0 || perf > cap {
		t.Fatalf("QPS@QoS %v outside (0, capacity %v]", perf, cap)
	}
}

func TestEngineSeedAndClassifyShapes(t *testing.T) {
	e, u := testSetup(t, 2)
	if e.Rows() != 14 {
		t.Fatalf("seeded rows = %d, want 14", e.Rows())
	}
	w := u.New(workload.Spec{Type: workload.Hadoop, Family: -1, MaxNodes: 4})
	es := e.Classify(w, NewGroundTruthProber(w, e.Platforms, sim.NewRNG(5)))
	if len(es.SULog) != len(e.SUCols) || len(es.SOLog) != len(e.SOCounts) ||
		len(es.HetLog) != len(e.Platforms) {
		t.Fatal("estimate row lengths wrong")
	}
	if _, ok := e.RowOf(w.ID); !ok {
		t.Fatal("classified workload not recorded")
	}
	if es.Beta() < 0.3 || es.Beta() > 1.3 {
		t.Fatalf("beta %v outside clamp", es.Beta())
	}
}

func TestClassificationAccuracy(t *testing.T) {
	// The heart of Table 2: with an offline library seeded, classification
	// from 2 entries per axis should estimate the full surfaces with
	// moderate error (paper: avg < 8%, max < 17%; our synthetic surfaces
	// are harder at the scale-up extremes, so we accept avg < 25%).
	e, u := testSetup(t, 4)
	var su, so, het, interf []float64
	for i := 0; i < 10; i++ {
		w := u.New(workload.Spec{Type: workload.Hadoop, Family: -1, MaxNodes: 4})
		_, errs := Validate(e, w)
		su = append(su, errs.ScaleUp...)
		so = append(so, errs.ScaleOut...)
		het = append(het, errs.Hetero...)
		interf = append(interf, errs.Interf...)
	}
	// Thresholds reflect this substrate's harder surfaces (per-instance
	// dataset effects move the memory cliff): the paper reports <8% avg on
	// real workloads; we bound the same ordering with looser absolutes.
	for name, bound := range map[string]float64{"scale-up": 0.35, "scale-out": 0.25, "hetero": 0.25} {
		var errs []float64
		switch name {
		case "scale-up":
			errs = su
		case "scale-out":
			errs = so
		case "hetero":
			errs = het
		}
		if st := Stats(errs); st.Avg > bound {
			t.Errorf("%s avg error %.3f above %.2f", name, st.Avg, bound)
		}
	}
	if st := Stats(interf); st.Avg > 0.15 {
		t.Errorf("interference avg error %.3f above 0.15", st.Avg)
	}
}

func TestSingleNodeSkipsScaleOut(t *testing.T) {
	e, u := testSetup(t, 2)
	w := u.New(workload.Spec{Type: workload.SingleNode, Family: -1})
	es := e.Classify(w, NewGroundTruthProber(w, e.Platforms, sim.NewRNG(5)))
	for _, v := range es.SOLog {
		if v != 0 {
			t.Fatal("single-node workload has scale-out estimates")
		}
	}
	if es.ScaleOutEff(4) != math.Pow(4, es.Beta()-1) {
		t.Fatal("eff formula mismatch")
	}
}

func TestEstimatesComposition(t *testing.T) {
	e, u := testSetup(t, 3)
	w := u.New(workload.Spec{Type: workload.Hadoop, Family: -1, MaxNodes: 4})
	es := e.Classify(w, NewGroundTruthProber(w, e.Platforms, sim.NewRNG(5)))

	// More resources on the same platform should not decrease estimated
	// performance by much (monotonicity up to quantization).
	lo := es.NodePerf(9, cluster.Alloc{Cores: 4, MemoryGB: 8}, cluster.ResVec{})
	hi := es.NodePerf(9, cluster.Alloc{Cores: 24, MemoryGB: 48}, cluster.ResVec{})
	if hi <= lo {
		t.Fatalf("whole node %v not better than quarter %v", hi, lo)
	}
	// Interference should reduce the estimate.
	var press cluster.ResVec
	for r := range press {
		press[r] = 0.8
	}
	dirty := es.NodePerf(9, cluster.Alloc{Cores: 24, MemoryGB: 48}, press)
	if dirty >= hi {
		t.Fatal("pressure did not reduce estimated perf")
	}
	// JobPerf aggregates.
	nodes := []NodeChoice{
		{PlatformIdx: 9, Alloc: cluster.Alloc{Cores: 24, MemoryGB: 48}},
		{PlatformIdx: 9, Alloc: cluster.Alloc{Cores: 24, MemoryGB: 48}},
	}
	if jp := es.JobPerf(nodes); jp <= hi {
		t.Fatalf("two nodes %v not better than one %v", jp, hi)
	}
}

func TestEstCausedPressureScales(t *testing.T) {
	e, u := testSetup(t, 2)
	w := u.New(workload.Spec{Type: workload.Hadoop, Family: -1, MaxNodes: 4})
	es := e.Classify(w, NewGroundTruthProber(w, e.Platforms, sim.NewRNG(5)))
	small := es.EstCausedPressure(9, cluster.Alloc{Cores: 2, MemoryGB: 4})
	big := es.EstCausedPressure(9, cluster.Alloc{Cores: 24, MemoryGB: 48})
	for r := 0; r < int(cluster.NumResources); r++ {
		if small[r] > big[r]+1e-12 {
			t.Fatalf("caused pressure should grow with allocation at %v", cluster.Resource(r))
		}
		if big[r] < 0 || big[r] > 1 {
			t.Fatalf("caused pressure out of range: %v", big[r])
		}
	}
}

func TestFeedbackUpdatesMatrix(t *testing.T) {
	e, u := testSetup(t, 2)
	w := u.New(workload.Spec{Type: workload.Hadoop, Family: -1, MaxNodes: 4})
	e.Classify(w, NewGroundTruthProber(w, e.Platforms, sim.NewRNG(5)))
	row, _ := e.RowOf(w.ID)
	e.Feedback(w.ID, AxisHetero, 3, 42.0)
	if v, ok := e.axes[AxisHetero].mat.Get(row, 3); !ok || math.Abs(v-math.Log(42)) > 1e-12 {
		t.Fatalf("feedback not recorded: %v %v", v, ok)
	}
	// Feedback for unknown workloads and bad axes must be a no-op.
	e.Feedback("nope", AxisHetero, 0, 1)
	e.Feedback(w.ID, Axis(99), 0, 1)
}

func TestReclassifyKeepsRow(t *testing.T) {
	e, u := testSetup(t, 2)
	w := u.New(workload.Spec{Type: workload.Hadoop, Family: -1, MaxNodes: 4})
	e.Classify(w, NewGroundTruthProber(w, e.Platforms, sim.NewRNG(5)))
	rowsBefore := e.Rows()
	row1, _ := e.RowOf(w.ID)
	es := e.Reclassify(w, NewGroundTruthProber(w, e.Platforms, sim.NewRNG(6)))
	row2, _ := e.RowOf(w.ID)
	if row1 != row2 || e.Rows() != rowsBefore {
		t.Fatal("reclassify should reuse the existing row")
	}
	if es == nil || es.Row != row1 {
		t.Fatal("reclassify estimates wrong row")
	}
	// Reclassify of an unknown workload falls back to Classify.
	w2 := u.New(workload.Spec{Type: workload.Storm, Family: -1, MaxNodes: 4})
	e.Reclassify(w2, NewGroundTruthProber(w2, e.Platforms, sim.NewRNG(7)))
	if _, ok := e.RowOf(w2.ID); !ok {
		t.Fatal("fallback classify did not record row")
	}
}

func TestExhaustiveClassify(t *testing.T) {
	platforms := cluster.LocalPlatforms()
	u := workload.NewUniverse(platforms, 13, 3)
	x := NewExhaustive(platforms, 8, DefaultOptions().CF, sim.NewRNG(3))
	if x.NumColumns() < 100 {
		t.Fatalf("joint space suspiciously small: %d", x.NumColumns())
	}
	for i := 0; i < 6; i++ {
		w := u.New(workload.Spec{Type: workload.Hadoop, Family: -1, MaxNodes: 4})
		x.Seed(w, NewGroundTruthProber(w, platforms, sim.NewRNG(int64(i))))
	}
	w := u.New(workload.Spec{Type: workload.Hadoop, Family: -1, MaxNodes: 4})
	noisy := NewGroundTruthProber(w, platforms, sim.NewRNG(55))
	errs := ValidateExhaustiveWith(x, w, noisy, 8)
	if len(errs) != x.NumColumns() {
		t.Fatalf("%d errors for %d columns", len(errs), x.NumColumns())
	}
	st := Stats(errs)
	if st.Avg > 0.6 {
		t.Fatalf("exhaustive avg error %.3f absurd", st.Avg)
	}
}

func TestStats(t *testing.T) {
	st := Stats([]float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0})
	if math.Abs(st.Avg-0.55) > 1e-12 || st.Max != 1.0 || st.N != 10 {
		t.Fatalf("stats %+v", st)
	}
	if st.P90 != 0.9 {
		t.Fatalf("p90 = %v", st.P90)
	}
	if z := Stats(nil); z.N != 0 || z.Avg != 0 {
		t.Fatalf("empty stats %+v", z)
	}
	m := Merge([]float64{1}, []float64{2, 3})
	if len(m) != 3 {
		t.Fatal("merge wrong")
	}
}

func TestAxisNames(t *testing.T) {
	for a := Axis(0); a < numAxes; a++ {
		if a.String() == "" {
			t.Fatal("axis missing name")
		}
	}
}
