package classify

import (
	"encoding/json"
	"fmt"

	"quasar/internal/cf"
	"quasar/internal/cluster"
	"quasar/internal/perfmodel"
)

// Snapshot support (§4.4): the engine's matrices and row index — the state
// a hot-standby master needs to continue classifying without re-profiling
// the world — serialize to JSON and rebuild on restore.

// EngineSnapshot is the serializable classification state.
type EngineSnapshot struct {
	// Axes holds, per axis, the sparse rows (column -> value).
	Axes [][]map[int]float64 `json:"axes"`
	// RowOf maps workload ID to matrix row.
	RowOf map[string]int `json:"row_of"`
}

// Snapshot exports the engine's matrices.
func (e *Engine) Snapshot() *EngineSnapshot {
	snap := &EngineSnapshot{RowOf: make(map[string]int, len(e.rowOf))}
	for _, a := range e.axes {
		snap.Axes = append(snap.Axes, a.mat.Export())
	}
	for id, row := range e.rowOf {
		snap.RowOf[id] = row
	}
	return snap
}

// MarshalJSON is provided by the struct tags; MarshalSnapshot is a
// convenience wrapper.
func (e *Engine) MarshalSnapshot() ([]byte, error) {
	return json.Marshal(e.Snapshot())
}

// LoadSnapshot replaces the engine's matrices with the snapshot's and
// retrains every axis model. Column layouts must match the engine's
// configuration (same platforms and grids).
func (e *Engine) LoadSnapshot(snap *EngineSnapshot) error {
	if len(snap.Axes) != int(numAxes) {
		return fmt.Errorf("classify: snapshot has %d axes, engine %d", len(snap.Axes), int(numAxes))
	}
	for i, rows := range snap.Axes {
		a := e.axes[i]
		a.mat = cf.NewSparseFrom(a.mat.Cols, rows)
		a.train()
	}
	e.rowOf = make(map[string]int, len(snap.RowOf))
	for id, row := range snap.RowOf {
		e.rowOf[id] = row
	}
	return nil
}

// UnmarshalSnapshot decodes and loads serialized state.
func (e *Engine) UnmarshalSnapshot(data []byte) error {
	var snap EngineSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return err
	}
	return e.LoadSnapshot(&snap)
}

// EstimateSnapshot is one workload's serialized classification output.
type EstimateSnapshot struct {
	ID      string         `json:"id"`
	Row     int            `json:"row"`
	Class   int            `json:"class"`
	RefPerf float64        `json:"ref_perf"`
	SULog   []float64      `json:"su_log"`
	SOLog   []float64      `json:"so_log"`
	HetLog  []float64      `json:"het_log"`
	Tol     cluster.ResVec `json:"tol"`
	Caused  cluster.ResVec `json:"caused"`
	Beta    float64        `json:"beta"`
}

// Snapshot exports the estimates.
func (es *Estimates) Snapshot() *EstimateSnapshot {
	return &EstimateSnapshot{
		ID: es.ID, Row: es.Row, Class: int(es.Class), RefPerf: es.RefPerf,
		SULog:  append([]float64(nil), es.SULog...),
		SOLog:  append([]float64(nil), es.SOLog...),
		HetLog: append([]float64(nil), es.HetLog...),
		Tol:    es.Tol, Caused: es.Caused, Beta: es.beta,
	}
}

// RestoreEstimates rebuilds an Estimates bound to the engine from a
// snapshot.
func RestoreEstimates(e *Engine, snap *EstimateSnapshot) (*Estimates, error) {
	if len(snap.SULog) != len(e.SUCols) || len(snap.HetLog) != len(e.Platforms) ||
		len(snap.SOLog) != len(e.SOCounts) {
		return nil, fmt.Errorf("classify: estimate snapshot for %s does not match engine grids", snap.ID)
	}
	return &Estimates{
		Engine: e, ID: snap.ID, Row: snap.Row,
		Class:   perfmodel.Class(snap.Class),
		RefPerf: snap.RefPerf,
		SULog:   append([]float64(nil), snap.SULog...),
		SOLog:   append([]float64(nil), snap.SOLog...),
		HetLog:  append([]float64(nil), snap.HetLog...),
		Tol:     snap.Tol, Caused: snap.Caused,
		beta: snap.Beta,
	}, nil
}
