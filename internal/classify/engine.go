package classify

import (
	"fmt"
	"math"

	"quasar/internal/cf"
	"quasar/internal/cluster"
	"quasar/internal/obs"
	"quasar/internal/obs/prof"
	"quasar/internal/par"
	"quasar/internal/sim"
	"quasar/internal/workload"
)

// Axis identifies one of the parallel classifications.
type Axis int

const (
	AxisScaleUp Axis = iota
	AxisScaleOut
	AxisHetero
	AxisTolerated
	AxisCaused

	numAxes
)

func (a Axis) String() string {
	switch a {
	case AxisScaleUp:
		return "scale-up"
	case AxisScaleOut:
		return "scale-out"
	case AxisHetero:
		return "heterogeneity"
	case AxisTolerated:
		return "interference-tolerated"
	case AxisCaused:
		return "interference-caused"
	}
	return fmt.Sprintf("axis(%d)", int(a))
}

// Options configures the engine.
type Options struct {
	// MaxNodes bounds the scale-out column grid (100 in the paper).
	MaxNodes int
	// Entries is the number of profiling samples per row per
	// classification (2 by default, per the paper's density analysis).
	Entries int
	// CF configures the latent-factor models.
	CF cf.Options
	// RetrainEvery triggers a full model retrain after this many appended
	// rows per axis.
	RetrainEvery int
	// Workers bounds the goroutines used for the per-axis fan-out (the
	// paper's four parallel classifications). Zero means the process
	// default (par.Resolve). The count never changes results — each axis
	// is confined to one task and merged by axis index.
	Workers int
}

// DefaultOptions returns the paper's settings.
func DefaultOptions() Options {
	return Options{MaxNodes: 100, Entries: 2, CF: cf.DefaultOptions(), RetrainEvery: 25}
}

const logFloor = 1e-9

func safeLog(v float64) float64 {
	if v < logFloor {
		v = logFloor
	}
	return math.Log(v)
}

type axis struct {
	name       string
	mat        *cf.Sparse
	model      *cf.Model
	sinceTrain int
	cfOpts     cf.Options
	retrain    int
}

func newAxis(name string, cols int, cfOpts cf.Options, retrain int) *axis {
	return &axis{name: name, mat: cf.NewSparse(0, cols), cfOpts: cfOpts, retrain: retrain}
}

// retrainThreshold grows with the matrix so training cost stays amortized:
// small libraries retrain eagerly, large ones at ~20% growth.
func (a *axis) retrainThreshold() int {
	th := a.retrain
	if grow := a.mat.Rows / 5; grow > th {
		th = grow
	}
	return th
}

func (a *axis) appendRow(obs map[int]float64) int {
	idx := a.mat.AppendRow(obs)
	a.sinceTrain++
	if a.model == nil || a.sinceTrain >= a.retrainThreshold() {
		a.train()
	}
	return idx
}

func (a *axis) train() {
	a.model = cf.Train(a.mat, a.cfOpts)
	a.sinceTrain = 0
}

// estimateRow reconstructs a full row via fold-in from the union of the
// workload's accumulated matrix entries (profiling history plus runtime
// feedback) and the fresh observations, preferring fresh values where both
// exist. rowIdx < 0 skips the history merge.
func (a *axis) estimateRow(rowIdx int, obs map[int]float64) []float64 {
	if a.model == nil {
		a.train()
	}
	merged := make(map[int]float64, len(obs)+4)
	if rowIdx >= 0 && rowIdx < a.mat.Rows {
		for j, v := range a.mat.Row(rowIdx) {
			merged[j] = v
		}
	}
	for j, v := range obs {
		merged[j] = v
	}
	row := a.model.FoldIn(merged)
	for j, v := range merged {
		if j >= 0 && j < len(row) {
			row[j] = v
		}
	}
	return row
}

// estimateRowFrozen is estimateRow for detached classification: strictly
// read-only (no lazy training, no history merge), so concurrent calls
// against the same axis are safe. With no model yet (empty library) the
// observations themselves are the best available row.
func (a *axis) estimateRowFrozen(obs map[int]float64) []float64 {
	if a.model == nil {
		row := make([]float64, a.mat.Cols)
		for j, v := range obs {
			if j >= 0 && j < len(row) {
				row[j] = v
			}
		}
		return row
	}
	row := a.model.FoldIn(obs)
	for j, v := range obs {
		if j >= 0 && j < len(row) {
			row[j] = v
		}
	}
	return row
}

func (a *axis) feedback(row, col int, v float64) {
	if row < 0 || row >= a.mat.Rows {
		return
	}
	a.mat.Set(row, col, v)
	a.sinceTrain++
	if a.sinceTrain >= a.retrainThreshold() {
		a.train()
	}
}

// Engine is the classification engine: five matrices (four classifications,
// with interference split into tolerated and caused) over a fixed platform
// set.
type Engine struct {
	Platforms []cluster.Platform
	HighEnd   int
	SUCols    []ScaleUpCol
	SOCounts  []int

	opts    Options
	workers int
	axes    [numAxes]*axis
	rowOf   map[string]int
	rng     *sim.RNG
	tracer  *obs.Tracer
	prof    *prof.Profiler
}

// SetTracer installs the tracer. Probe fan-outs trace through shards merged
// in input order, so emission stays deterministic across worker counts.
func (e *Engine) SetTracer(tr *obs.Tracer) { e.tracer = tr }

// SetProfiler installs the self-profiler; Classify and EnsureTrained (the
// sequential, sim-goroutine entry points) attribute to prof.SubClassify.
// ClassifyDetached runs on pool workers and stays uninstrumented — the
// profiler is single-goroutine by design.
func (e *Engine) SetProfiler(p *prof.Profiler) { e.prof = p }

// NewEngine builds an engine for the platform set.
func NewEngine(platforms []cluster.Platform, opts Options, rng *sim.RNG) *Engine {
	if opts.MaxNodes <= 0 {
		opts.MaxNodes = 100
	}
	if opts.Entries <= 0 {
		opts.Entries = 2
	}
	if opts.RetrainEvery <= 0 {
		opts.RetrainEvery = 25
	}
	if opts.CF.K == 0 {
		opts.CF = cf.DefaultOptions()
	}
	he := cluster.HighestEnd(platforms)
	e := &Engine{
		Platforms: platforms,
		HighEnd:   he,
		SUCols:    ScaleUpColumns(&platforms[he]),
		SOCounts:  ScaleOutCounts(opts.MaxNodes),
		opts:      opts,
		workers:   opts.Workers,
		rowOf:     make(map[string]int),
		rng:       rng,
	}
	e.axes[AxisScaleUp] = newAxis("scale-up", len(e.SUCols), opts.CF, opts.RetrainEvery)
	e.axes[AxisScaleOut] = newAxis("scale-out", len(e.SOCounts), opts.CF, opts.RetrainEvery)
	e.axes[AxisHetero] = newAxis("heterogeneity", len(platforms), opts.CF, opts.RetrainEvery)
	e.axes[AxisTolerated] = newAxis("tolerated", int(cluster.NumResources), opts.CF, opts.RetrainEvery)
	e.axes[AxisCaused] = newAxis("caused", int(cluster.NumResources), opts.CF, opts.RetrainEvery)
	return e
}

// RetrainAll retrains every axis model from its matrix. This is the cost a
// from-scratch reconstruction pays at an arrival (the paper's SVD +
// PQ-reconstruction per submission); the engine otherwise amortizes it via
// fold-in plus periodic retraining. The five retrains run on the axis fan-out
// pool; each touches only its own axis, so results match the sequential loop.
func (e *Engine) RetrainAll() {
	par.ParFor(e.workers, int(numAxes), func(i int) {
		e.axes[i].train()
	})
}

// EnsureTrained trains any axis that has rows but no model yet. Callers must
// invoke it before a detached (concurrent, read-only) classification pass so
// the fan-out folds in against frozen models instead of racing to train.
func (e *Engine) EnsureTrained() {
	t0 := e.prof.Begin()
	defer e.prof.End(prof.SubClassify, t0)
	par.ParFor(e.workers, int(numAxes), func(i int) {
		a := e.axes[i]
		if a.model == nil && a.mat.Rows > 0 {
			a.train()
		}
	})
}

// Rows returns the number of workloads in the matrices.
func (e *Engine) Rows() int { return e.axes[AxisScaleUp].mat.Rows }

// RowOf returns the matrix row of a previously classified workload.
func (e *Engine) RowOf(id string) (int, bool) {
	r, ok := e.rowOf[id]
	return r, ok
}

// pickDistinct selects k distinct indices from [0,n).
func pickDistinct(rng *sim.RNG, n, k int) []int {
	if k > n {
		k = n
	}
	perm := rng.Perm(n)
	return perm[:k]
}

// refAlloc is the reference allocation every workload is measured at: the
// whole profiling (highest-end) node. All scale-up and heterogeneity matrix
// entries are stored relative to it, which makes rows scale-free — batch
// rates and service QPS can share matrices — and lets two sparse entries
// pin a row accurately. The absolute anchor is kept per workload in
// Estimates.RefPerf.
func (e *Engine) refAlloc() cluster.Alloc {
	p := &e.Platforms[e.HighEnd]
	return cluster.Alloc{Cores: p.Cores, MemoryGB: p.MemoryGB}
}

// refCol returns the scale-up column index of the reference allocation.
func (e *Engine) refCol() int { return NearestScaleUpCol(e.SUCols, e.refAlloc()) }

// secondaryPlatform returns the fixed second profiling platform: the
// lowest-end one (fewest total compute), most divergent from the reference.
func (e *Engine) secondaryPlatform() int {
	best, bestScore := 0, math.Inf(1)
	for j := range e.Platforms {
		if j == e.HighEnd {
			continue
		}
		score := float64(e.Platforms[j].Cores) * e.Platforms[j].CorePerf
		if score < bestScore {
			best, bestScore = j, score
		}
	}
	return best
}

// ProbeObs holds the sparse observations one profiling pass produced — one
// map per axis — plus the absolute performance anchor of the reference run.
// It is the unit that moves between the probe stage (prober- and
// workload-confined, may run concurrently across workloads) and the append
// stage (matrix mutation, always applied in input order).
type ProbeObs struct {
	RefPerf float64
	obs     [numAxes]map[int]float64
}

// SeedOffline adds a densely profiled workload to every matrix — the
// paper's offline-characterized library ("a small number of different
// workload types (20-30)" profiled exhaustively, §3.2).
func (e *Engine) SeedOffline(w *workload.Instance, p Prober) {
	e.appendObs(w.ID, e.probeSeed(w, p))
}

// SeedOfflineMany seeds ws[i] with probers[i] concurrently. The dense probe
// stage fans out (each task touches only its own workload and prober); the
// appends then land sequentially in input order, so the matrices are
// byte-identical to seeding the workloads one at a time.
func (e *Engine) SeedOfflineMany(ws []*workload.Instance, probers []Prober) {
	shards := e.tracer.Shards(len(ws))
	all := par.ParMap(e.workers, len(ws), func(i int) *ProbeObs {
		po := e.probeSeed(ws[i], probers[i])
		if sh := shards[i]; sh.Enabled() {
			sh.Instant("classify", "classify", "seed-probe",
				obs.Arg{Key: "workload", Val: ws[i].ID},
				obs.Arg{Key: "ref_perf", Val: po.RefPerf})
		}
		return po
	})
	e.tracer.Merge(shards)
	for i, po := range all {
		e.appendObs(ws[i].ID, po)
	}
}

// probeSeed runs the dense offline characterization. It only reads engine
// state (column grids, platforms) and draws nothing from the engine RNG, so
// it is safe to run concurrently across workloads.
func (e *Engine) probeSeed(w *workload.Instance, p Prober) *ProbeObs {
	ref := p.ScaleUp(e.refAlloc())
	su := make(map[int]float64, len(e.SUCols))
	for j, col := range e.SUCols {
		su[j] = safeLog(p.ScaleUp(cluster.Alloc{Cores: col.Cores, MemoryGB: col.MemoryGB})) - safeLog(ref)
	}
	so := make(map[int]float64, len(e.SOCounts))
	if w.Type.Distributed() {
		alloc := e.profilingAlloc()
		for j, n := range e.SOCounts {
			if n == 1 {
				so[j] = 0
				continue
			}
			so[j] = safeLog(p.ScaleOut(n, alloc))
		}
	}
	het := make(map[int]float64, len(e.Platforms))
	refHet := p.Heterogeneity(e.HighEnd)
	for j := range e.Platforms {
		het[j] = safeLog(p.Heterogeneity(j)) - safeLog(refHet)
	}
	tol := make(map[int]float64, int(cluster.NumResources))
	caused := make(map[int]float64, int(cluster.NumResources))
	for r := 0; r < int(cluster.NumResources); r++ {
		tol[r] = clamp01(p.ToleratedIntensity(cluster.Resource(r)))
		caused[r] = clamp01(p.CausedIntensity(cluster.Resource(r)))
	}
	po := &ProbeObs{RefPerf: ref}
	po.obs[AxisScaleUp] = su
	po.obs[AxisScaleOut] = so
	po.obs[AxisHetero] = het
	po.obs[AxisTolerated] = tol
	po.obs[AxisCaused] = caused
	return po
}

// appendObs appends one workload's observations to all five matrices, each
// axis on its own task (the paper's parallel classifications). Per-axis
// training state is confined to its task, so the matrices and models come
// out identical to a sequential append.
func (e *Engine) appendObs(id string, po *ProbeObs) int {
	par.ParFor(e.workers, int(numAxes), func(i int) {
		e.axes[i].appendRow(po.obs[i])
	})
	row := e.axes[AxisScaleUp].mat.Rows - 1
	e.rowOf[id] = row
	return row
}

// profilingAlloc is the reference per-node allocation for scale-out probes:
// half the profiling platform.
func (e *Engine) profilingAlloc() cluster.Alloc {
	p := &e.Platforms[e.HighEnd]
	return cluster.Alloc{Cores: maxInt(1, p.Cores/2), MemoryGB: p.MemoryGB / 2}
}

// Classify profiles an arriving workload with Entries samples per axis (the
// paper's sparse profiling: two scale-up runs, one scale-out run, one
// heterogeneity run, two injected microbenchmarks) and reconstructs its
// full rows by fold-in. The workload is appended to the matrices so later
// arrivals benefit from it.
func (e *Engine) Classify(w *workload.Instance, p Prober) *Estimates {
	t0 := e.prof.Begin()
	defer e.prof.End(prof.SubClassify, t0)
	po := e.probeArrival(w, p, e.rng.Stream("classify/"+w.ID))
	row := e.appendObs(w.ID, po)
	if e.tracer.Enabled() {
		e.tracer.Instant("classify", "classify", "classify",
			obs.Arg{Key: "workload", Val: w.ID},
			obs.Arg{Key: "row", Val: row},
			obs.Arg{Key: "ref_perf", Val: po.RefPerf})
	}
	return e.estimatesFromProbe(w, row, po)
}

// ClassifyDetached classifies w against the engine's frozen models without
// touching engine state: probes come through the supplied RNG (derive it
// from the engine stream in input order before fanning out), and the row
// estimate folds in against the current models. It is the concurrent half of
// a batch classification — call EnsureTrained first, run ClassifyDetached
// across workloads on the pool, then Append each returned ProbeObs in input
// order so the matrices grow exactly as a sequential pass would.
//
// Detached estimates differ from Classify's in one way: they do not see the
// other workloads of the same batch (fold-in is against the models as of the
// batch start), matching the paper's view of independent per-arrival
// classification.
func (e *Engine) ClassifyDetached(w *workload.Instance, p Prober, rng *sim.RNG) (*Estimates, *ProbeObs) {
	po := e.probeArrival(w, p, rng)
	return e.estimatesFromProbe(w, -1, po), po
}

// Append adds a detached arrival's observations to the matrices and returns
// its row. It mutates axis state and must be called sequentially, in input
// order, after the detached fan-out has completed.
func (e *Engine) Append(id string, po *ProbeObs) int {
	return e.appendObs(id, po)
}

// probeArrival runs the sparse online profiling for one arrival. It reads
// engine state but never writes it, draws only from the supplied rng, and
// confines workload mutation to the prober — the properties that let a
// detached batch run many probeArrivals concurrently.
func (e *Engine) probeArrival(w *workload.Instance, p Prober, rng *sim.RNG) *ProbeObs {
	entries := e.opts.Entries

	// Reference run: the whole profiling node. It anchors the absolute
	// performance scale and doubles as the scale-up reference entry and
	// the heterogeneity entry for the profiling platform.
	refPerf := p.ScaleUp(e.refAlloc())
	refLog := safeLog(refPerf)

	// Scale-up: the reference plus Entries-1 allocations at genuinely
	// different core/memory points ("two different core/thread counts and
	// memory allocations", §3.2) — probing near the reference carries no
	// information about the curve's shape.
	su := make(map[int]float64, entries)
	su[e.refCol()] = 0
	ref := e.refAlloc()
	informative := make([]int, 0, len(e.SUCols))
	for j, col := range e.SUCols {
		if col.Cores*3 <= ref.Cores && col.MemoryGB*2 <= ref.MemoryGB && col.Cores >= ref.Cores/8 {
			informative = append(informative, j)
		}
	}
	if len(informative) == 0 {
		for j := range e.SUCols {
			if j != e.refCol() {
				informative = append(informative, j)
			}
		}
	}
	for _, oi := range pickDistinct(rng, len(informative), entries-1) {
		j := informative[oi]
		col := e.SUCols[j]
		su[j] = safeLog(p.ScaleUp(cluster.Alloc{Cores: col.Cores, MemoryGB: col.MemoryGB})) - refLog
	}

	// Scale-out: the single-node point is free (ratio 1); each further
	// entry probes a small node count (profiling uses 1-4 nodes online).
	so := make(map[int]float64)
	if w.Type.Distributed() {
		so[0] = 0 // n=1 -> log ratio 0
		alloc := e.profilingAlloc()
		smallCounts := []int{} // indices of counts 2..4
		for j, n := range e.SOCounts {
			if n >= 2 && n <= 4 {
				smallCounts = append(smallCounts, j)
			}
		}
		picks := pickDistinct(rng, len(smallCounts), entries-1)
		for _, pi := range picks {
			j := smallCounts[pi]
			so[j] = safeLog(p.ScaleOut(e.SOCounts[j], alloc))
		}
	}

	// Heterogeneity: the profiling platform (the reference run) plus a
	// fixed secondary platform — the paper always profiles on the same
	// pair ("the two platforms used are A and B", §3.4). The low-end
	// platform is maximally divergent from the reference, which pins the
	// row's spread; additional entries (when Entries > 2) cover random
	// other platforms.
	het := make(map[int]float64, entries)
	het[e.HighEnd] = 0
	second := e.secondaryPlatform()
	if entries >= 2 {
		het[second] = safeLog(p.Heterogeneity(second)) - refLog
	}
	if extra := entries - 2; extra > 0 {
		others := make([]int, 0, len(e.Platforms))
		for j := range e.Platforms {
			if j != e.HighEnd && j != second {
				others = append(others, j)
			}
		}
		for _, oi := range pickDistinct(rng, len(others), extra) {
			j := others[oi]
			het[j] = safeLog(p.Heterogeneity(j)) - refLog
		}
	}

	// Interference: Entries microbenchmarks injected for tolerated, and
	// Entries reverse measurements for caused.
	tol := make(map[int]float64, entries)
	for _, r := range pickDistinct(rng, int(cluster.NumResources), entries) {
		tol[r] = clamp01(p.ToleratedIntensity(cluster.Resource(r)))
	}
	caused := make(map[int]float64, entries)
	for _, r := range pickDistinct(rng, int(cluster.NumResources), entries) {
		caused[r] = clamp01(p.CausedIntensity(cluster.Resource(r)))
	}

	po := &ProbeObs{RefPerf: refPerf}
	po.obs[AxisScaleUp] = su
	po.obs[AxisScaleOut] = so
	po.obs[AxisHetero] = het
	po.obs[AxisTolerated] = tol
	po.obs[AxisCaused] = caused
	return po
}

// estimatesFromProbe reconstructs full rows from one arrival's observations.
// The five axis estimates run on the fan-out pool and merge by axis index.
// row < 0 is the detached mode: no history merge and strictly read-only
// fold-in against the frozen models.
func (e *Engine) estimatesFromProbe(w *workload.Instance, row int, po *ProbeObs) *Estimates {
	es := &Estimates{
		Engine:  e,
		ID:      w.ID,
		Row:     row,
		Class:   w.Type.Class(),
		RefPerf: po.RefPerf,
	}
	var rows [numAxes][]float64
	par.ParFor(e.workers, int(numAxes), func(i int) {
		if Axis(i) == AxisScaleOut && !w.Type.Distributed() {
			rows[i] = make([]float64, len(e.SOCounts)) // flat: no scale-out
			return
		}
		if row < 0 {
			rows[i] = e.axes[i].estimateRowFrozen(po.obs[i])
			return
		}
		rows[i] = e.axes[i].estimateRow(row, po.obs[i])
	})
	es.SULog = rows[AxisScaleUp]
	es.SOLog = rows[AxisScaleOut]
	es.HetLog = rows[AxisHetero]
	for r := 0; r < int(cluster.NumResources); r++ {
		es.Tol[r] = clamp01(rows[AxisTolerated][r])
		es.Caused[r] = clamp01(rows[AxisCaused][r])
	}
	es.deriveBeta(po.obs[AxisScaleOut])
	return es
}

// Reclassify re-profiles a workload in place (phase change or detected
// misclassification, §4.1) and returns fresh estimates. The workload's
// existing matrix row is overwritten with the new observations.
func (e *Engine) Reclassify(w *workload.Instance, p Prober) *Estimates {
	row, ok := e.rowOf[w.ID]
	if !ok {
		return e.Classify(w, p)
	}
	if e.tracer.Enabled() {
		e.tracer.Instant("classify", "classify", "reclassify",
			obs.Arg{Key: "workload", Val: w.ID},
			obs.Arg{Key: "row", Val: row})
	}
	rng := e.rng.Stream("reclassify/" + w.ID)
	entries := e.opts.Entries

	refPerf := p.ScaleUp(e.refAlloc())
	refLog := safeLog(refPerf)
	su := make(map[int]float64, entries)
	su[e.refCol()] = 0
	e.axes[AxisScaleUp].feedback(row, e.refCol(), 1) // safeLog(1)=0 via feedback transform
	for _, j := range pickDistinct(rng, len(e.SUCols), entries) {
		col := e.SUCols[j]
		v := safeLog(p.ScaleUp(cluster.Alloc{Cores: col.Cores, MemoryGB: col.MemoryGB})) - refLog
		su[j] = v
		e.axes[AxisScaleUp].feedback(row, j, math.Exp(v))
	}
	so := map[int]float64{}
	if w.Type.Distributed() {
		so[0] = 0
	}
	het := map[int]float64{}
	het[e.HighEnd] = 0
	e.axes[AxisHetero].feedback(row, e.HighEnd, 1)
	tol := make(map[int]float64, entries)
	for _, r := range pickDistinct(rng, int(cluster.NumResources), entries) {
		tol[r] = clamp01(p.ToleratedIntensity(cluster.Resource(r)))
		e.axes[AxisTolerated].feedback(row, r, tol[r])
	}
	caused := make(map[int]float64, entries)
	for _, r := range pickDistinct(rng, int(cluster.NumResources), entries) {
		caused[r] = clamp01(p.CausedIntensity(cluster.Resource(r)))
		e.axes[AxisCaused].feedback(row, r, caused[r])
	}
	po := &ProbeObs{RefPerf: refPerf}
	po.obs[AxisScaleUp] = su
	po.obs[AxisScaleOut] = so
	po.obs[AxisHetero] = het
	po.obs[AxisTolerated] = tol
	po.obs[AxisCaused] = caused
	return e.estimatesFromProbe(w, row, po)
}

// Feedback updates one matrix entry with a runtime-observed value (the
// paper's feedback loop that corrects misclassifications and extends the
// matrices past profiling scale, §3.2).
func (e *Engine) Feedback(id string, axis Axis, col int, value float64) {
	row, ok := e.rowOf[id]
	if !ok || axis < 0 || axis >= numAxes {
		return
	}
	if axis == AxisScaleUp || axis == AxisScaleOut || axis == AxisHetero {
		value = safeLog(value)
	} else {
		value = clamp01(value)
	}
	e.axes[axis].feedback(row, col, value)
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
