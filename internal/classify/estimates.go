package classify

import (
	"math"

	"quasar/internal/cluster"
	"quasar/internal/interference"
	"quasar/internal/perfmodel"
)

// Estimates is the classification output for one workload: the
// reconstructed performance surface along all four axes, in the workload's
// own performance metric (work rate for batch, QPS-at-QoS for services).
// The greedy scheduler composes these to predict performance for any
// candidate allocation/assignment (§3.3).
type Estimates struct {
	Engine *Engine
	ID     string
	Row    int
	Class  perfmodel.Class

	// RefPerf is the measured absolute performance at the reference
	// allocation (whole profiling node); SULog and HetLog are relative to
	// it.
	RefPerf float64
	SULog   []float64 // log perf ratio per scale-up column vs reference
	SOLog   []float64 // log relative scaling per node-count column
	HetLog  []float64 // log whole-node perf ratio per platform vs reference
	Tol     cluster.ResVec
	Caused  cluster.ResVec

	beta float64 // scale-out exponent fitted to SOLog
}

// deriveBeta fits log(scaling) = beta * log(n) over the scale-out row by
// weighted least squares through the origin. Directly measured points carry
// far more weight than reconstructed ones: fold-in regresses toward the
// library mean, which would mask strongly sub- or superlinear jobs.
func (es *Estimates) deriveBeta(observed map[int]float64) {
	num, den := 0.0, 0.0
	for j, n := range es.Engine.SOCounts {
		if n <= 1 {
			continue
		}
		w := 1.0
		if _, ok := observed[j]; ok {
			w = 25.0
		}
		x := math.Log(float64(n))
		num += w * x * es.SOLog[j]
		den += w * x * x
	}
	if den == 0 { //lint:allow(floatcmp) exact-zero guard before division
		es.beta = 1
		return
	}
	es.beta = num / den
	if es.beta < 0.3 {
		es.beta = 0.3
	}
	if es.beta > 1.3 {
		es.beta = 1.3
	}
}

// Beta returns the estimated scale-out exponent.
func (es *Estimates) Beta() float64 { return es.beta }

// EstSensitivity converts the tolerated-intensity row into estimated
// full-contention sensitivities.
func (es *Estimates) EstSensitivity() cluster.ResVec {
	var s cluster.ResVec
	for r := 0; r < int(cluster.NumResources); r++ {
		s[r] = interference.ToleranceToSensitivity(es.Tol[r], interference.DefaultQoSDrop)
	}
	return s
}

// EstCausedPressure scales the caused-intensity row to an allocation on a
// platform, mirroring how real pressure scales with the occupied share of
// the machine.
func (es *Estimates) EstCausedPressure(platformIdx int, alloc cluster.Alloc) cluster.ResVec {
	p := &es.Engine.Platforms[platformIdx]
	frac := float64(alloc.Cores) / float64(p.Cores)
	if frac > 1 {
		frac = 1
	}
	// The caused row was measured at a half-node allocation on the
	// profiling platform; rescale by the core-fraction ratio.
	ref := 0.5
	out := es.Caused.Scale(frac / ref)
	for r := range out {
		if out[r] > 1 {
			out[r] = 1
		}
	}
	return out
}

// scaleUpRatio estimates rate(alloc)/rate(ref) using the scale-up row at
// the nearest quantized columns.
func (es *Estimates) scaleUpRatio(alloc, ref cluster.Alloc) float64 {
	cols := es.Engine.SUCols
	ja := NearestScaleUpCol(cols, alloc)
	jr := NearestScaleUpCol(cols, ref)
	return math.Exp(es.SULog[ja] - es.SULog[jr])
}

// NodePerf estimates the workload's performance on one server of the given
// platform with the given allocation, under the given interference
// pressure. Composition: whole-node heterogeneity estimate × scale-up
// fraction × interference penalty.
func (es *Estimates) NodePerf(platformIdx int, alloc cluster.Alloc, pressure cluster.ResVec) float64 {
	p := &es.Engine.Platforms[platformIdx]
	whole := es.RefPerf * math.Exp(es.HetLog[platformIdx])
	ref := cluster.Alloc{Cores: p.Cores, MemoryGB: p.MemoryGB}
	perf := whole * es.scaleUpRatio(alloc, ref)
	perf *= perfmodel.InterferencePenalty(es.EstSensitivity(), pressure)
	return perf
}

// ScaleOutEff returns the estimated efficiency multiplier for n nodes:
// n^(beta-1).
func (es *Estimates) ScaleOutEff(n int) float64 {
	if n <= 1 {
		return 1
	}
	return math.Pow(float64(n), es.beta-1)
}

// NodeChoice is one server in a candidate assignment.
type NodeChoice struct {
	PlatformIdx int
	Alloc       cluster.Alloc
	Pressure    cluster.ResVec
}

// JobPerf estimates aggregate performance over a candidate multi-node
// assignment.
func (es *Estimates) JobPerf(nodes []NodeChoice) float64 {
	sum := 0.0
	for _, n := range nodes {
		sum += es.NodePerf(n.PlatformIdx, n.Alloc, n.Pressure)
	}
	return sum * es.ScaleOutEff(len(nodes))
}

// CorrectWith implements the paper's runtime feedback loop (§3.2): when the
// measured performance of a live allocation deviates from the estimate, the
// deviation is folded back into the estimates (and, via Engine.Feedback,
// into the matrices), so the scheduler stops trusting — and re-picking —
// misestimated platforms. It returns the correction factor applied.
func (es *Estimates) CorrectWith(measured float64, nodes []NodeChoice) float64 {
	if measured <= 0 || len(nodes) == 0 {
		return 1
	}
	est := es.JobPerf(nodes)
	if est <= 0 {
		return 1
	}
	c := measured / est
	if c > 4 {
		c = 4
	}
	if c < 0.25 {
		c = 0.25
	}
	if c > 0.9 && c < 1.1 {
		return 1 // within noise; leave the estimates alone
	}
	adj := math.Log(c)
	seen := map[int]bool{}
	for _, n := range nodes {
		if seen[n.PlatformIdx] {
			continue
		}
		seen[n.PlatformIdx] = true
		es.HetLog[n.PlatformIdx] += adj
		// Propagate to the engine's matrix so future workloads benefit.
		es.Engine.Feedback(es.ID, AxisHetero, n.PlatformIdx, math.Exp(es.HetLog[n.PlatformIdx]))
	}
	return c
}
