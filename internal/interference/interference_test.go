package interference

import (
	"math"
	"testing"

	"quasar/internal/cluster"
	"quasar/internal/perfmodel"
)

func TestMicrobenchmarkPressure(t *testing.T) {
	m := Microbenchmark{Resource: cluster.ResLLC, Intensity: 0.7}
	v := m.Pressure()
	if v[cluster.ResLLC] != 0.7 {
		t.Fatalf("pressure %v", v)
	}
	for r := 0; r < int(cluster.NumResources); r++ {
		if cluster.Resource(r) != cluster.ResLLC && v[r] != 0 {
			t.Fatal("pressure leaked to other resources")
		}
	}
	// Clamping.
	if (Microbenchmark{Resource: cluster.ResCPU, Intensity: 5}).Pressure()[cluster.ResCPU] != 1 {
		t.Fatal("intensity not clamped to 1")
	}
	if (Microbenchmark{Resource: cluster.ResCPU, Intensity: -1}).Pressure()[cluster.ResCPU] != 0 {
		t.Fatal("negative intensity not clamped")
	}
}

func TestPatternsMatchTable1(t *testing.T) {
	ps := Patterns()
	if len(ps) != 9 {
		t.Fatalf("%d patterns, want 9 (A-I)", len(ps))
	}
	if ps[0].Name != "A" || ps[0].Resource != -1 {
		t.Fatal("pattern A should be no-interference")
	}
	want := map[string]cluster.Resource{
		"B": cluster.ResMemBW, "C": cluster.ResL1I, "D": cluster.ResLLC,
		"E": cluster.ResDiskIO, "F": cluster.ResNetBW, "G": cluster.ResL2,
		"H": cluster.ResCPU, "I": cluster.ResPrefetch,
	}
	for name, res := range want {
		p, err := PatternByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if p.Resource != res {
			t.Fatalf("pattern %s -> %v, want %v", name, p.Resource, res)
		}
	}
	if _, err := PatternByName("Z"); err == nil {
		t.Fatal("unknown pattern accepted")
	}
}

func TestPatternVec(t *testing.T) {
	p, _ := PatternByName("D")
	if p.Vec(0.5)[cluster.ResLLC] != 0.5 {
		t.Fatal("pattern vec wrong")
	}
	a, _ := PatternByName("A")
	if a.Vec(1.0) != (cluster.ResVec{}) {
		t.Fatal("pattern A should exert no pressure")
	}
}

// syntheticVictim returns a measure function with known linear sensitivity.
func syntheticVictim(sens cluster.ResVec) func(cluster.ResVec) float64 {
	return func(extra cluster.ResVec) float64 {
		return 100 * perfmodel.InterferencePenalty(sens, extra)
	}
}

func TestProbeToleranceSensitiveVictim(t *testing.T) {
	var sens cluster.ResVec
	sens[cluster.ResLLC] = 0.5 // loses 50% at full contention
	tol := ProbeTolerance(syntheticVictim(sens), cluster.ResLLC, DefaultQoSDrop, 50)
	// Linear model: 5% drop at intensity 0.05/0.5 = 0.1.
	if math.Abs(tol-0.1) > 0.03 {
		t.Fatalf("tolerated intensity %v, want ~0.1", tol)
	}
}

func TestProbeToleranceInsensitiveVictim(t *testing.T) {
	var sens cluster.ResVec
	sens[cluster.ResLLC] = 0.5
	// Probe a resource the victim does not care about.
	tol := ProbeTolerance(syntheticVictim(sens), cluster.ResNetBW, DefaultQoSDrop, 20)
	if tol != 1.0 {
		t.Fatalf("insensitive victim tolerated %v, want 1.0", tol)
	}
}

func TestProbeToleranceExtremeVictim(t *testing.T) {
	var sens cluster.ResVec
	sens[cluster.ResCPU] = 1.0
	tol := ProbeTolerance(syntheticVictim(sens), cluster.ResCPU, DefaultQoSDrop, 100)
	if tol > 0.07 {
		t.Fatalf("hyper-sensitive victim tolerated %v, want ~0.05", tol)
	}
}

func TestProbeToleranceDeadVictim(t *testing.T) {
	dead := func(cluster.ResVec) float64 { return 0 }
	if tol := ProbeTolerance(dead, cluster.ResCPU, DefaultQoSDrop, 10); tol != 0 {
		t.Fatalf("dead victim tolerance %v, want 0", tol)
	}
}

func TestToleranceToSensitivityRoundTrip(t *testing.T) {
	// For a linearly-sensitive victim, probe + conversion should recover
	// the underlying sensitivity.
	for _, trueSens := range []float64{0.2, 0.4, 0.8} {
		var sens cluster.ResVec
		sens[cluster.ResMemBW] = trueSens
		tol := ProbeTolerance(syntheticVictim(sens), cluster.ResMemBW, DefaultQoSDrop, 100)
		got := ToleranceToSensitivity(tol, DefaultQoSDrop)
		if math.Abs(got-trueSens) > 0.12 {
			t.Fatalf("sensitivity %v recovered as %v", trueSens, got)
		}
	}
	if ToleranceToSensitivity(1.0, 0.05) != 0.05 {
		t.Fatal("full tolerance should map to the qosDrop bound")
	}
	if ToleranceToSensitivity(0, 0.05) != 1 {
		t.Fatal("zero tolerance should map to full sensitivity")
	}
}
