// Package interference provides the iBench-style contention
// microbenchmarks of the paper (§3.2, §4.1): tunable-intensity pressure
// sources targeting one shared resource at a time, the Table 1 interference
// patterns, and the ramp-up probe that measures a workload's tolerated
// intensity in a resource.
package interference

import (
	"fmt"

	"quasar/internal/cluster"
)

// Microbenchmark is a synthetic contention source: it exerts Intensity
// (0..1) of pressure on exactly one shared resource, like the iBench
// benchmarks the paper injects.
type Microbenchmark struct {
	Resource  cluster.Resource
	Intensity float64
}

// Pressure returns the resource-pressure vector the microbenchmark exerts.
func (m Microbenchmark) Pressure() cluster.ResVec {
	var v cluster.ResVec
	in := m.Intensity
	if in < 0 {
		in = 0
	}
	if in > 1 {
		in = 1
	}
	if m.Resource >= 0 && m.Resource < cluster.NumResources {
		v[m.Resource] = in
	}
	return v
}

// Pattern is one of the Table 1 interference patterns A-I: a named
// single-resource contention setting (pattern A is "no interference").
type Pattern struct {
	Name     string
	Resource cluster.Resource // -1 for none
}

// Patterns returns the Table 1 interference patterns:
// A: none, B: memory (bandwidth), C: L1 instruction cache, D: last-level
// cache, E: disk I/O, F: network, G: L2 cache, H: CPU, I: prefetchers.
func Patterns() []Pattern {
	return []Pattern{
		{Name: "A", Resource: -1},
		{Name: "B", Resource: cluster.ResMemBW},
		{Name: "C", Resource: cluster.ResL1I},
		{Name: "D", Resource: cluster.ResLLC},
		{Name: "E", Resource: cluster.ResDiskIO},
		{Name: "F", Resource: cluster.ResNetBW},
		{Name: "G", Resource: cluster.ResL2},
		{Name: "H", Resource: cluster.ResCPU},
		{Name: "I", Resource: cluster.ResPrefetch},
	}
}

// PatternByName returns the named Table 1 pattern.
func PatternByName(name string) (Pattern, error) {
	for _, p := range Patterns() {
		if p.Name == name {
			return p, nil
		}
	}
	return Pattern{}, fmt.Errorf("interference: unknown pattern %q", name)
}

// Vec returns the pressure vector of the pattern at the given intensity.
func (p Pattern) Vec(intensity float64) cluster.ResVec {
	if p.Resource < 0 {
		return cluster.ResVec{}
	}
	return Microbenchmark{Resource: p.Resource, Intensity: intensity}.Pressure()
}

// DefaultQoSDrop is the performance-drop threshold at which the probe
// records the tolerated intensity ("typically 5%", §3.2).
const DefaultQoSDrop = 0.05

// ProbeTolerance ramps a contention microbenchmark in the given resource
// and returns the highest intensity the victim tolerates before its
// performance drops by more than qosDrop relative to the unloaded baseline.
// measure must return the victim's performance metric (higher is better)
// under the given extra pressure. steps controls the ramp granularity.
//
// A return of 1.0 means the workload never dropped below the threshold —
// it is insensitive to this resource.
func ProbeTolerance(measure func(extra cluster.ResVec) float64, r cluster.Resource, qosDrop float64, steps int) float64 {
	if steps < 2 {
		steps = 2
	}
	base := measure(cluster.ResVec{})
	if base <= 0 {
		return 0
	}
	prev := 0.0
	for i := 1; i <= steps; i++ {
		in := float64(i) / float64(steps)
		perf := measure(Microbenchmark{Resource: r, Intensity: in}.Pressure())
		if perf < (1-qosDrop)*base {
			// The tolerated intensity is the last level that still met
			// QoS, refined by linear interpolation within the step.
			lo, hi := prev, in
			basePerfAtLo := measure(Microbenchmark{Resource: r, Intensity: lo}.Pressure())
			if basePerfAtLo <= perf {
				return lo
			}
			frac := (basePerfAtLo - (1-qosDrop)*base) / (basePerfAtLo - perf)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return lo + frac*(hi-lo)
		}
		prev = in
	}
	return 1.0
}

// ToleranceToSensitivity converts a tolerated intensity into an estimated
// full-contention sensitivity, inverting the probe's definition: if a 5%
// loss occurs at intensity t, a linear penalty model loses qosDrop/t at
// full contention.
func ToleranceToSensitivity(tolerated, qosDrop float64) float64 {
	if tolerated >= 1 {
		// Never dropped: sensitivity is at most qosDrop.
		return qosDrop
	}
	if tolerated <= 0 {
		return 1
	}
	s := qosDrop / tolerated
	if s > 1 {
		s = 1
	}
	return s
}
