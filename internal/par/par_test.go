package par

import (
	"runtime"
	"sync/atomic"
	"testing"

	"quasar/internal/sim"
)

func TestParForCoversAllIndices(t *testing.T) {
	t.Parallel()
	for _, w := range []int{1, 2, 4, 16} {
		hits := make([]int32, 100)
		ParFor(w, len(hits), func(i int) {
			atomic.AddInt32(&hits[i], 1)
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d hit %d times", w, i, h)
			}
		}
	}
}

func TestParForZeroAndNegativeN(t *testing.T) {
	t.Parallel()
	called := false
	ParFor(4, 0, func(int) { called = true })
	ParFor(4, -3, func(int) { called = true })
	if called {
		t.Fatal("fn called for empty range")
	}
}

func TestParMapOrdersResults(t *testing.T) {
	t.Parallel()
	for _, w := range []int{1, 3, 8} {
		got := ParMap(w, 50, func(i int) int { return i * i })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d]=%d", w, i, v)
			}
		}
	}
}

func TestParMapErrReturnsFirstErrorByIndex(t *testing.T) {
	t.Parallel()
	errA := &indexErr{7}
	errB := &indexErr{3}
	_, err := ParMapErr(4, 10, func(i int) (int, error) {
		switch i {
		case 7:
			return 0, errA
		case 3:
			return 0, errB
		}
		return i, nil
	})
	if err != errB {
		t.Fatalf("got %v, want error from lowest index 3", err)
	}
}

type indexErr struct{ i int }

func (e *indexErr) Error() string { return "task failed" }

func TestParForPanicPropagates(t *testing.T) {
	t.Parallel()
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("panic swallowed")
		}
	}()
	ParFor(4, 10, func(i int) {
		if i == 5 {
			panic("boom")
		}
	})
}

// TestParMapDeterministicWithSubstreams is the contract test: per-task RNG
// substreams plus input-order merge must give byte-identical results for
// any worker count.
func TestParMapDeterministicWithSubstreams(t *testing.T) {
	t.Parallel()
	run := func(workers int) []float64 {
		rng := sim.NewRNG(42)
		subs := rng.Substreams("task", 64)
		return ParMap(workers, len(subs), func(i int) float64 {
			r := subs[i]
			sum := 0.0
			for k := 0; k < 100; k++ {
				sum += r.Float64()
			}
			return sum
		})
	}
	want := run(1)
	for _, w := range []int{2, 4, runtime.NumCPU()} {
		got := run(w)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: out[%d]=%v want %v", w, i, got[i], want[i])
			}
		}
	}
}

func TestResolveAndDefaultWorkers(t *testing.T) {
	if Resolve(3) != 3 {
		t.Fatal("explicit count ignored")
	}
	SetDefaultWorkers(5)
	if Resolve(0) != 5 {
		t.Fatal("default not used")
	}
	SetDefaultWorkers(0)
	if Resolve(0) != runtime.GOMAXPROCS(0) {
		t.Fatal("GOMAXPROCS fallback broken")
	}
}
