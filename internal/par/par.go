// Package par is the repository's deterministic parallel-execution layer:
// a bounded worker pool with ParFor/ParMap primitives whose results are
// merged in input order, so output is byte-identical regardless of worker
// count or GOMAXPROCS.
//
// The determinism contract has three clauses, and every call site must
// honor all of them:
//
//  1. Each task i must be a pure function of its inputs: it may not read
//     or write state shared with other tasks. State that a task mutates
//     (matrices, probers, workload instances) must be confined to that
//     task.
//  2. Randomness inside a task must come from the task's own seeded RNG
//     substream, derived *before* the fan-out in input order — see
//     sim.RNG.Substreams ("stream:0" … "stream:n-1"). Sharing one
//     generator across tasks makes draw order depend on goroutine
//     scheduling and is flagged by quasar-lint's determinism analyzer.
//  3. Results are only combined by input index (ParMap) or by the caller
//     after the pool drains, never in completion order.
//
// Under these rules a worker count of 1 reproduces the sequential
// execution exactly, which is what the determinism matrix tests assert.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// defaultWorkers holds the process-wide worker count used when a caller
// passes workers <= 0; zero means runtime.GOMAXPROCS(0). It exists so the
// CLIs can expose a single -workers flag without threading a parameter
// through every experiment config. It must never affect results — only how
// fast they arrive.
var defaultWorkers atomic.Int64

// SetDefaultWorkers sets the process-wide default worker count. n <= 0
// restores the GOMAXPROCS default.
func SetDefaultWorkers(n int) {
	if n < 0 {
		n = 0
	}
	defaultWorkers.Store(int64(n))
}

// Resolve maps a caller-supplied worker count to the effective pool size:
// the count itself when positive, otherwise the process default, otherwise
// GOMAXPROCS.
func Resolve(workers int) int {
	if workers > 0 {
		return workers
	}
	if d := defaultWorkers.Load(); d > 0 {
		return int(d)
	}
	return runtime.GOMAXPROCS(0)
}

// ParFor runs fn(i) for every i in [0,n) on a pool of at most
// Resolve(workers) goroutines. It returns when every task has finished.
// Tasks are handed out in index order through an atomic cursor; with one
// worker the execution is exactly the sequential loop. A panicking task
// stops its worker; the first panic (by observation order) is re-raised in
// the caller after the pool drains.
func ParFor(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	w := Resolve(workers)
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		next    atomic.Int64
		wg      sync.WaitGroup
		panicMu sync.Mutex
		panicV  any
	)
	wg.Add(w)
	for k := 0; k < w; k++ {
		//lint:allow(hotalloc) one worker closure per fan-out, amortized over the n tasks it drains
		go func() {
			defer wg.Done()
			//lint:allow(hotalloc) one recover handler per worker per fan-out, amortized as above
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if panicV == nil {
						//lint:allow(parcapture) first-panic capture: mutex-guarded, and which panic wins never affects results (the run aborts)
						panicV = r
					}
					panicMu.Unlock()
				}
			}()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	if panicV != nil {
		panic(panicV)
	}
}

// ParMap runs fn(i) for every i in [0,n) on the bounded pool and returns
// the results in input order: out[i] = fn(i). Each result slot is written
// exactly once by the task that owns it, so no locking is needed and the
// merge order never depends on scheduling.
func ParMap[T any](workers, n int, fn func(i int) T) []T {
	out := make([]T, n)
	ParFor(workers, n, func(i int) {
		out[i] = fn(i)
	})
	return out
}

// ParMapErr is ParMap for fallible tasks. Every task runs to completion;
// the returned error is the first non-nil error by input index (not by
// completion time), keeping error reporting deterministic too.
func ParMapErr[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	ParFor(workers, n, func(i int) {
		out[i], errs[i] = fn(i)
	})
	for _, err := range errs {
		if err != nil {
			return out, err
		}
	}
	return out, nil
}
