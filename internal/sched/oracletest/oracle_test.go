// Package oracletest differentially tests the scheduler's indexed ranking
// fast path against the original full-scan ranker, which is kept in-tree as
// the oracle behind Options.FullScan. Two schedulers share one cluster; a
// randomized sequence of placements, evictions, drains, crashes, restarts,
// detector flaps, and probe/degradation churn mutates the cluster, and after
// every step both schedulers rank and schedule the same request. The
// orderings and decisions must match exactly — including every float bit —
// because the simulator's byte-identical traces depend on it.
package oracletest

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"quasar/internal/classify"
	"quasar/internal/cluster"
	"quasar/internal/sched"
	"quasar/internal/sim"
	"quasar/internal/workload"
)

// fixture owns one shared cluster and the two schedulers under comparison.
type fixture struct {
	cl      *cluster.Cluster
	u       *workload.Universe
	eng     *classify.Engine
	est     map[string]*classify.Estimates
	indexed *sched.Scheduler
	oracle  *sched.Scheduler

	placed []string
	where  map[string][]*cluster.Server
	nextWL int
}

func newFixture(t testing.TB, opts sched.Options) *fixture {
	t.Helper()
	platforms := cluster.LocalPlatforms()
	cl, err := cluster.New(platforms, []int{4, 4, 4, 4, 4, 4, 4, 4, 4, 4})
	if err != nil {
		t.Fatal(err)
	}
	cl.AssignZones(4)
	u := workload.NewUniverse(platforms, 21, 3)
	copts := classify.DefaultOptions()
	copts.MaxNodes = 32
	eng := classify.NewEngine(platforms, copts, sim.NewRNG(5))
	oOpts := opts
	oOpts.FullScan = true
	return &fixture{
		cl: cl, u: u, eng: eng,
		est:     map[string]*classify.Estimates{},
		indexed: sched.New(cl, opts),
		oracle:  sched.New(cl, oOpts),
		where:   map[string][]*cluster.Server{},
	}
}

func (f *fixture) newRequest(t testing.TB, rng *sim.RNG) *sched.Request {
	t.Helper()
	types := []workload.Type{workload.Hadoop, workload.Memcached, workload.SingleNode, workload.Spark}
	w := f.u.New(workload.Spec{Type: types[rng.Intn(len(types))], Family: -1, MaxNodes: 4})
	if rng.Bool(0.3) {
		w.BestEffort = true
	}
	es := f.eng.Classify(w, classify.NewGroundTruthProber(w, f.eng.Platforms, rng))
	f.est[w.ID] = es
	return &sched.Request{
		W: w, Est: es,
		NeedPerf: rng.Uniform(0.5, 40),
		MaxNodes: 1 + rng.Intn(4),
		EstOf:    func(id string) *classify.Estimates { return f.est[id] },
	}
}

// compare ranks and schedules the request on both schedulers and fails on
// the first divergence.
func (f *fixture) compare(t testing.TB, step int, req *sched.Request) (*sched.Assignment, error) {
	t.Helper()
	ri := f.indexed.RankCandidates(req)
	ro := f.oracle.RankCandidates(req)
	if !reflect.DeepEqual(ri, ro) {
		n := len(ri)
		if len(ro) < n {
			n = len(ro)
		}
		for i := 0; i < n; i++ {
			if !reflect.DeepEqual(ri[i], ro[i]) {
				t.Fatalf("step %d: rank diverges at %d:\n  indexed: %+v\n  oracle:  %+v", step, i, ri[i], ro[i])
			}
		}
		t.Fatalf("step %d: rank lengths diverge: indexed %d vs oracle %d", step, len(ri), len(ro))
	}
	ai, erri := f.indexed.Schedule(req)
	ao, erro := f.oracle.Schedule(req)
	if (erri == nil) != (erro == nil) {
		t.Fatalf("step %d: schedule errors diverge: indexed %v vs oracle %v", step, erri, erro)
	}
	if erri != nil {
		return nil, erri
	}
	if got, want := describe(ai), describe(ao); got != want {
		t.Fatalf("step %d: assignments diverge:\n  indexed: %s\n  oracle:  %s", step, got, want)
	}
	return ai, nil
}

// describe serializes every decision-relevant field, floats at full bit
// precision.
func describe(a *sched.Assignment) string {
	s := fmt.Sprintf("perf=%x cost=%x ev=%v nodes=[", math.Float64bits(a.EstPerf), math.Float64bits(a.CostPerHour), a.Evictions)
	for _, n := range a.Nodes {
		s += fmt.Sprintf("(%d %d %x)", n.Server.ID, n.Alloc.Cores, math.Float64bits(n.Alloc.MemoryGB))
	}
	return s + "]"
}

// apply realizes an assignment on the shared cluster (evictions first).
func (f *fixture) apply(t testing.TB, req *sched.Request, asn *sched.Assignment) {
	t.Helper()
	for _, ev := range asn.Evictions {
		f.removeEverywhere(t, ev)
	}
	for _, n := range asn.Nodes {
		caused := req.W.CausedPressure(n.Server.Platform, n.Alloc)
		if _, err := n.Server.Place(req.W.ID, n.Alloc, caused, req.W.BestEffort); err != nil {
			t.Fatalf("apply %s: %v", req.W.ID, err)
		}
		f.where[req.W.ID] = append(f.where[req.W.ID], n.Server)
	}
	if len(asn.Nodes) > 0 {
		f.placed = append(f.placed, req.W.ID)
	}
}

func (f *fixture) removeEverywhere(t testing.TB, id string) {
	t.Helper()
	for _, srv := range f.where[id] {
		if srv.Placement(id) != nil {
			if err := srv.Remove(id); err != nil {
				t.Fatal(err)
			}
		}
	}
	delete(f.where, id)
	for i, p := range f.placed {
		if p == id {
			f.placed[i] = f.placed[len(f.placed)-1]
			f.placed = f.placed[:len(f.placed)-1]
			break
		}
	}
}

// churn applies one random cluster mutation.
func (f *fixture) churn(t testing.TB, rng *sim.RNG) {
	t.Helper()
	srv := f.cl.Servers[rng.Intn(len(f.cl.Servers))]
	switch k := rng.Intn(100); {
	case k < 30: // evict a random placed workload
		if len(f.placed) > 0 {
			f.removeEverywhere(t, f.placed[rng.Intn(len(f.placed))])
		}
	case k < 45: // drain one server completely
		for _, pl := range append([]*cluster.Placement(nil), srv.Placements()...) {
			if err := srv.Remove(pl.WorkloadID); err != nil {
				t.Fatal(err)
			}
		}
	case k < 60: // crash / restart
		if srv.Up() {
			srv.SetDown()
		} else {
			srv.SetUp()
		}
	case k < 70: // partition flap
		srv.SetPartitioned(!srv.Partitioned())
	case k < 80: // detector flap
		srv.SetDet(cluster.DetectorState(rng.Intn(3)))
	case k < 90: // probe churn
		var v cluster.ResVec
		if rng.Bool(0.5) {
			v[rng.Intn(int(cluster.NumResources))] = rng.Uniform(0, 0.7)
		}
		srv.SetProbe(v)
	default: // degradation churn
		var v cluster.ResVec
		if rng.Bool(0.5) {
			v[rng.Intn(int(cluster.NumResources))] = rng.Uniform(0, 0.7)
		}
		srv.SetDegrade(v)
	}
}

// run drives one randomized mutate-and-compare sequence.
func run(t *testing.T, opts sched.Options, rng *sim.RNG, steps int) {
	f := newFixture(t, opts)
	for step := 0; step < steps; step++ {
		f.churn(t, rng)
		req := f.newRequest(t, rng)
		asn, err := f.compare(t, step, req)
		if err == nil && rng.Bool(0.7) {
			f.apply(t, req, asn)
		}
	}
	if err := f.cl.Idx().Validate(); err != nil {
		t.Fatalf("final index state: %v", err)
	}
}

// TestIndexedRankMatchesFullScan is the main differential suite: randomized
// place/evict/drain/crash/restart sequences with a full rank-and-schedule
// comparison after every mutation, across independent substreams.
func TestIndexedRankMatchesFullScan(t *testing.T) {
	streams, steps := 6, 60
	if testing.Short() {
		streams, steps = 2, 25
	}
	subs := sim.NewRNG(20260808).Substreams("sched-oracle", streams)
	for i, rng := range subs {
		rng := rng
		t.Run(fmt.Sprintf("substream-%d", i), func(t *testing.T) {
			run(t, sched.DefaultOptions(), rng, steps)
		})
	}
}

// TestIndexedRankMatchesFullScanAblations repeats the differential run under
// each ablation knob, which exercises every quality-computation branch of
// the shared appraisal.
func TestIndexedRankMatchesFullScanAblations(t *testing.T) {
	cases := []struct {
		name string
		mod  func(*sched.Options)
	}{
		{"ignore-interference", func(o *sched.Options) { o.IgnoreInterference = true }},
		{"ignore-heterogeneity", func(o *sched.Options) { o.IgnoreHeterogeneity = true }},
		{"ignore-both", func(o *sched.Options) {
			o.IgnoreInterference = true
			o.IgnoreHeterogeneity = true
		}},
		{"spread-zones", func(o *sched.Options) { o.SpreadZones = true }},
		{"scale-out-first", func(o *sched.Options) { o.ScaleOutFirst = true }},
	}
	steps := 30
	if testing.Short() {
		steps = 12
	}
	for ci, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			opts := sched.DefaultOptions()
			tc.mod(&opts)
			run(t, opts, sim.NewRNG(int64(1000+ci)), steps)
		})
	}
}
