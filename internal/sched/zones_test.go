package sched

import (
	"testing"

	"quasar/internal/workload"
)

// TestSpreadZonesDiversifiesAssignment: with zone spreading on, a
// multi-node assignment should cover more fault zones than servers would
// naturally provide, at near-equal estimated quality.
func TestSpreadZonesDiversifiesAssignment(t *testing.T) {
	zonesUsed := func(spread bool) (int, int) {
		f := newFixture(t)
		f.cl.AssignZones(4)
		f.s.Opts.SpreadZones = spread
		w := f.u.New(workload.Spec{Type: workload.Hadoop, Family: -1, MaxNodes: 8})
		asn, err := f.s.Schedule(f.request(w, 200, 8))
		if err != nil {
			t.Fatal(err)
		}
		zones := map[int]bool{}
		for _, n := range asn.Nodes {
			zones[n.Server.Zone] = true
		}
		return len(zones), len(asn.Nodes)
	}
	zOn, nOn := zonesUsed(true)
	zOff, nOff := zonesUsed(false)
	if nOn < 2 {
		t.Skipf("assignment too small to spread (%d nodes)", nOn)
	}
	if zOn < zOff {
		t.Fatalf("zone spreading reduced diversity: %d/%d vs %d/%d zones",
			zOn, nOn, zOff, nOff)
	}
	// With 4 zones and several nodes, spreading should cover >1 zone.
	if nOn >= 2 && zOn < 2 {
		t.Fatalf("spread assignment stayed in one zone (%d nodes)", nOn)
	}
}

// TestAssignZonesRoundRobin covers the cluster helper.
func TestAssignZonesRoundRobin(t *testing.T) {
	f := newFixture(t)
	f.cl.AssignZones(3)
	counts := map[int]int{}
	for _, s := range f.cl.Servers {
		counts[s.Zone]++
	}
	if len(counts) != 3 {
		t.Fatalf("%d zones", len(counts))
	}
	for z, n := range counts {
		if n < len(f.cl.Servers)/3-1 || n > len(f.cl.Servers)/3+1 {
			t.Fatalf("zone %d has %d servers (unbalanced)", z, n)
		}
	}
	// Degenerate argument.
	f.cl.AssignZones(0)
	for _, s := range f.cl.Servers {
		if s.Zone != 0 {
			t.Fatal("zero zones should collapse to one")
		}
	}
}
