// Package sched implements Quasar's greedy joint resource allocation and
// assignment (§3.3). Given a workload's classification estimates, it ranks
// available servers by quality for this workload (platform affinity and
// current interference), then sizes the allocation — scale-up within a
// server before scale-out across servers — until the estimated performance
// meets the target, allocating the least amount of resources that does.
package sched

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"quasar/internal/classify"
	"quasar/internal/cluster"
	"quasar/internal/obs"
	"quasar/internal/obs/prof"
	"quasar/internal/workload"
)

// ErrNoCapacity signals admission control: no assignment can currently
// provide even a minimal allocation ("the scheduler employs admission
// control to prevent oversubscription when no resources are available").
var ErrNoCapacity = errors.New("sched: no capacity for workload")

// Request asks for an assignment.
type Request struct {
	W   *workload.Instance
	Est *classify.Estimates

	// NeedPerf is the performance required, in the workload's own metric:
	// estimated-work/target-time for batch, target QPS for services, the
	// IPS target for single-node workloads.
	NeedPerf float64

	// MaxNodes bounds scale-out (1 for single-node workloads).
	MaxNodes int

	// MaxCostPerHour optionally caps the resource cost of the allocation
	// (the cost-target extension of §4.4); 0 means unlimited.
	MaxCostPerHour float64

	// AcceptPartial disables the MinFill admission check: the caller wants
	// the best currently available allocation even if it falls well short
	// of NeedPerf (used when rescheduling past-due workloads).
	AcceptPartial bool

	// EstOf looks up the classification estimates of a resident workload,
	// for interference compatibility checks; nil residents are treated as
	// insensitive.
	EstOf func(workloadID string) *classify.Estimates
}

// NodeAssign is one server share of an assignment.
type NodeAssign struct {
	Server *cluster.Server
	Alloc  cluster.Alloc
}

// Assignment is the scheduler's decision.
type Assignment struct {
	Nodes   []NodeAssign
	EstPerf float64
	// Evictions lists best-effort workloads that must be displaced to
	// realize the assignment.
	Evictions []string
	// Config is the tuned framework configuration for configured
	// workloads (nil otherwise).
	Config *workload.FrameworkConfig
	// CostPerHour is the resource cost of the assignment.
	CostPerHour float64
}

// Options tunes the scheduler.
type Options struct {
	// PerfMargin is the headroom factor applied to NeedPerf (allocate for
	// margin x need) to absorb estimation error; 1.1 by default.
	PerfMargin float64
	// MinFill is the fraction of NeedPerf below which admission control
	// rejects the workload instead of placing a starved allocation.
	MinFill float64
	// ScaleOutFirst flips the sizing order (ablation knob; the paper
	// scales up first).
	ScaleOutFirst bool
	// IgnoreInterference disables interference-aware ranking and
	// compatibility checks (ablation knob).
	IgnoreInterference bool
	// IgnoreHeterogeneity ranks servers by free capacity only (ablation
	// knob).
	IgnoreHeterogeneity bool

	// FullScan forces ranking to sweep every server instead of consulting
	// the cluster's free-resource index. The two paths produce identical
	// candidate orderings (the oracletest package holds them to it); the
	// full scan is kept as the oracle and as an escape hatch.
	FullScan bool

	// SpreadZones makes multi-node assignments prefer servers in fault
	// zones the workload does not occupy yet (§4.4 fault-zone extension):
	// among near-equal candidates, a new zone wins.
	SpreadZones bool
}

// DefaultOptions returns production settings.
func DefaultOptions() Options {
	return Options{PerfMargin: 1.1, MinFill: 0.25}
}

// Scheduler performs greedy allocation/assignment over a cluster.
type Scheduler struct {
	Cluster *cluster.Cluster
	Opts    Options

	// Tracer, when non-nil, receives one decision event per Schedule call
	// carrying the full candidate ranking and the chosen assignment.
	Tracer *obs.Tracer

	// Prof, when non-nil, attributes Schedule's wall time to prof.SubSched.
	// Outside the determinism boundary; see internal/obs/prof.
	Prof *prof.Profiler

	// candBuf, srvScratch, and zoneScratch are reused across Schedule calls
	// so ranking does not reallocate per decision. The scheduler is driven
	// from the single-goroutine simulation loop, so unsynchronized reuse is
	// safe.
	candBuf     []candidate
	srvScratch  []*cluster.Server
	sorter      candSorter
	zoneScratch map[int]bool
}

// New returns a scheduler.
func New(c *cluster.Cluster, opts Options) *Scheduler {
	if opts.PerfMargin <= 0 {
		opts.PerfMargin = 1.1
	}
	if opts.MinFill <= 0 {
		opts.MinFill = 0.25
	}
	return &Scheduler{Cluster: c, Opts: opts, zoneScratch: make(map[int]bool)}
}

// CostPerCoreHour prices a platform's cores: faster cores cost more. The
// same pricing is used by the scheduler's cost cap and by managers checking
// a live allocation against a workload's budget.
func CostPerCoreHour(p *cluster.Platform) float64 {
	return 0.03 * p.CorePerf
}

// candidate is a ranked server.
type candidate struct {
	server    *cluster.Server
	pidx      int
	quality   float64
	freeCores int
	freeMem   float64
	pressure  float64 // max interference pressure the server puts on this workload
	compat    bool
	evictable []*cluster.Placement // best-effort residents
}

// freeAfterEviction returns the capacity available counting best-effort
// residents as removable.
func freeAfterEviction(s *cluster.Server) (cores int, mem float64, evictable []*cluster.Placement) {
	cores, mem = s.FreeCores(), s.FreeMemGB()
	for _, pl := range s.Placements() {
		if pl.BestEffort {
			cores += pl.Alloc.Cores
			mem += pl.Alloc.MemoryGB
			//lint:allow(hotalloc) nil in the common case: only allocates when best-effort residents are present
			evictable = append(evictable, pl)
		}
	}
	return cores, mem, evictable
}

// candSorter sorts ranked candidates by decreasing quality. It lives as a
// field on the Scheduler so sort.Sort receives an interior pointer and the
// interface conversion never allocates (sort.Slice's closure would).
type candSorter struct{ cands []candidate }

func (cs *candSorter) Len() int      { return len(cs.cands) }
func (cs *candSorter) Swap(i, j int) { cs.cands[i], cs.cands[j] = cs.cands[j], cs.cands[i] }

func (cs *candSorter) Less(i, j int) bool {
	cands := cs.cands
	if cands[i].quality != cands[j].quality { //lint:allow(floatcmp) sort tie-break: any consistent order is fine
		return cands[i].quality > cands[j].quality
	}
	// Tie-break toward bigger machines (fewer nodes for the same
	// estimated quality), then by ID for determinism.
	ci := float64(cands[i].server.Platform.Cores) * cands[i].server.Platform.CorePerf
	cj := float64(cands[j].server.Platform.Cores) * cands[j].server.Platform.CorePerf
	if ci != cj { //lint:allow(floatcmp) sort tie-break: any consistent order is fine
		return ci > cj
	}
	return cands[i].server.ID < cands[j].server.ID
}

// appraise builds the ranked candidate for one server given its
// free-after-eviction capacity. It is the single quality computation shared
// by the full-scan and indexed ranking paths: both feed it identical inputs,
// so the resulting candidates are bit-identical.
func (s *Scheduler) appraise(req *Request, srv *cluster.Server, pidx, cores int, mem float64, evictable []*cluster.Placement) candidate {
	var quality float64
	switch {
	case s.Opts.IgnoreHeterogeneity && s.Opts.IgnoreInterference:
		quality = float64(cores)
	case s.Opts.IgnoreHeterogeneity:
		pen := 1 - srv.PressureOn(req.W.ID).Max()
		quality = float64(cores) * pen
	default:
		pressure := srv.PressureOn(req.W.ID)
		if s.Opts.IgnoreInterference {
			pressure = cluster.ResVec{}
		}
		whole := cluster.Alloc{Cores: srv.Platform.Cores, MemoryGB: srv.Platform.MemoryGB}
		quality = req.Est.NodePerf(pidx, whole, pressure)
	}
	compat := s.compatible(req, srv)
	if !compat {
		// Penalize rather than exclude: a colocation that would hurt
		// residents is a last resort.
		quality *= 0.05
	}
	return candidate{
		server: srv, pidx: pidx, quality: quality,
		freeCores: cores, freeMem: mem,
		pressure: srv.PressureOn(req.W.ID).Max(), compat: compat,
		evictable: evictable,
	}
}

// rank orders servers by decreasing quality for this request, through the
// index fast path unless the FullScan option (or an index-less cluster)
// forces the sweep. Both paths produce the same ordering: the candidate set
// is identical by construction and the comparator is a total order (quality,
// then whole-node capacity, then server ID), so sorting erases any
// difference in traversal order. The returned slice aliases the scheduler's
// scratch buffer and is valid until the next Schedule call.
func (s *Scheduler) rank(req *Request) []candidate {
	var cands []candidate
	if s.Opts.FullScan || s.Cluster.Idx() == nil {
		cands = s.rankScan(req, s.candBuf[:0])
	} else {
		cands = s.rankIndexed(req, s.candBuf[:0])
	}
	s.candBuf = cands
	s.sorter.cands = cands
	sort.Sort(&s.sorter)
	return cands
}

// rankScan is the original full sweep over every server, kept as the oracle
// for the indexed path and as the fallback for index-less clusters.
func (s *Scheduler) rankScan(req *Request, cands []candidate) []candidate {
	for _, srv := range s.Cluster.Servers {
		if !srv.Schedulable() {
			// Never place on a down, partitioned, or detector-suspect
			// server: a suspect either dies (placement lost) or clears
			// within a beat, and waiting is far cheaper than displacing.
			continue
		}
		cores, mem, evictable := freeAfterEviction(srv)
		if cores < 1 || mem <= 0 {
			continue
		}
		pidx := s.Cluster.PlatformIndex(srv.Platform.Name)
		//lint:allow(hotalloc) append into receiver-owned scratch: grows to cluster size once, then steady-state reuses capacity
		cands = append(cands, s.appraise(req, srv, pidx, cores, mem, evictable))
	}
	return cands
}

// rankIndexed consults the cluster's free-resource index instead of sweeping:
// full and unschedulable servers are never visited, and pristine servers —
// whose ranking inputs are bit-identical within a platform — are appraised
// once per platform and stamped. The per-candidate values match rankScan's
// exactly: capacity comes from the index cache (maintained with the same
// accumulation order as freeAfterEviction), and pristine servers have
// exactly-zero pressure by construction, so the shared appraisal of a
// representative equals the appraisal of each member.
func (s *Scheduler) rankIndexed(req *Request, cands []candidate) []candidate {
	ix := s.Cluster.Idx()
	for pidx := range s.Cluster.Platforms {
		prs := ix.AppendPristine(pidx, s.srvScratch[:0])
		if len(prs) > 0 {
			srv0 := prs[0]
			cores, mem, _ := srv0.FreeAfterEviction()
			proto := s.appraise(req, srv0, pidx, cores, mem, nil)
			for _, srv := range prs {
				c := proto
				c.server = srv
				//lint:allow(hotalloc) append into receiver-owned scratch: grows to cluster size once, then steady-state reuses capacity
				cands = append(cands, c)
			}
		}
		occ := ix.AppendOccupiable(pidx, prs[:0])
		for _, srv := range occ {
			cores, mem, evictable := srv.FreeAfterEviction()
			//lint:allow(hotalloc) append into receiver-owned scratch: grows to cluster size once, then steady-state reuses capacity
			cands = append(cands, s.appraise(req, srv, pidx, cores, mem, evictable))
		}
		s.srvScratch = occ[:0]
	}
	return cands
}

// RankedCandidate is an externally visible snapshot of one ranked server,
// exposed so differential tests can compare the indexed and full-scan
// ranking paths field by field.
type RankedCandidate struct {
	ServerID   int
	Platform   string
	Quality    float64
	FreeCores  int
	FreeMemGB  float64
	Pressure   float64
	Compatible bool
	Evictable  []string
}

// RankCandidates ranks the cluster for the request and returns a snapshot
// of the ordering. It does not mutate the cluster. Intended for tests and
// diagnostics; Schedule uses the internal ranking directly.
func (s *Scheduler) RankCandidates(req *Request) []RankedCandidate {
	cands := s.rank(req)
	out := make([]RankedCandidate, len(cands))
	for i, c := range cands {
		rc := RankedCandidate{
			ServerID: c.server.ID, Platform: c.server.Platform.Name,
			Quality: c.quality, FreeCores: c.freeCores, FreeMemGB: c.freeMem,
			Pressure: c.pressure, Compatible: c.compat,
		}
		for _, ev := range c.evictable {
			rc.Evictable = append(rc.Evictable, ev.WorkloadID)
		}
		out[i] = rc
	}
	return out
}

// compatible reports whether placing the request's workload on the server
// would keep every non-best-effort resident within its interference
// tolerance ("colocate workloads that do not interfere with each other").
func (s *Scheduler) compatible(req *Request, srv *cluster.Server) bool {
	if s.Opts.IgnoreInterference || req.EstOf == nil {
		return true
	}
	caused := req.Est.EstCausedPressure(
		s.Cluster.PlatformIndex(srv.Platform.Name),
		cluster.Alloc{Cores: srv.Platform.Cores / 2, MemoryGB: srv.Platform.MemoryGB / 2})
	for _, pl := range srv.Placements() {
		if pl.BestEffort {
			continue
		}
		res := req.EstOf(pl.WorkloadID)
		if res == nil {
			continue
		}
		existing := srv.PressureOn(pl.WorkloadID)
		for r := 0; r < int(cluster.NumResources); r++ {
			if existing[r]+caused[r] > res.Tol[r]+0.05 {
				return false
			}
		}
	}
	return true
}

// memGrid is the quantized memory ladder used when right-sizing.
var memGrid = []float64{1, 2, 4, 8, 12, 16, 24, 32, 48, 64}

// coreGrid is the quantized scale-up ladder of core counts.
var coreGrid = [...]int{1, 2, 4, 6, 8, 12, 16, 20, 24, 32}

// sizeOption is one feasible right-sized allocation with its estimated
// performance.
type sizeOption struct {
	alloc cluster.Alloc
	perf  float64
}

// rightSizeAlloc picks the smallest allocation on a candidate that achieves
// perf >= want there, or the largest achievable if none does. It walks the
// quantized scale-up grid: cores ascending, and for each core count the
// least memory within 95% of the best for that count (freeing memory the
// workload does not need).
func (s *Scheduler) rightSizeAlloc(req *Request, cand candidate, want float64) (cluster.Alloc, float64) {
	_, freeMem, _ := freeAfterEviction(cand.server)
	pressure := cand.server.PressureOn(req.W.ID)
	if s.Opts.IgnoreInterference {
		pressure = cluster.ResVec{}
	}
	// First pass: the right-sized (least-memory) allocation and its
	// estimated performance at each feasible core count. The buffer is a
	// stack array: at most one option per grid rung.
	var optBuf [len(coreGrid)]sizeOption
	opts := optBuf[:0]
	for _, c := range coreGrid {
		if c > cand.freeCores || c > cand.server.Platform.Cores {
			continue
		}
		// Most memory we could give at this core count.
		maxMem := math.Min(freeMem, cand.server.Platform.MemoryGB)
		if maxMem <= 0 {
			continue
		}
		// Configured frameworks have a known per-node memory footprint
		// (one heap per mapper); never right-size below it — the scale-up
		// estimates are too coarse to see that cliff reliably.
		memFloor := 1.0
		if req.W.Config != nil {
			memFloor = float64(c)*0.5 + 0.5
		}
		top := req.Est.NodePerf(cand.pidx, cluster.Alloc{Cores: c, MemoryGB: maxMem}, pressure)
		// Least memory within 95% of top for this core count.
		alloc := cluster.Alloc{Cores: c, MemoryGB: maxMem}
		perf := top
		for _, m := range memGrid {
			if m > maxMem {
				break
			}
			if m < memFloor {
				continue
			}
			pf := req.Est.NodePerf(cand.pidx, cluster.Alloc{Cores: c, MemoryGB: m}, pressure)
			if pf >= 0.95*top {
				alloc = cluster.Alloc{Cores: c, MemoryGB: m}
				perf = pf
				break
			}
		}
		//lint:allow(hotalloc) append into a stack array sized to the grid: capacity is never exceeded
		opts = append(opts, sizeOption{alloc, perf})
		if perf >= want {
			return alloc, perf
		}
	}
	if len(opts) == 0 {
		return cluster.Alloc{}, 0
	}
	// The want level is unattainable here. Allocating ever more cores for
	// vanishing marginal gain is pure waste (a low-parallelism workload
	// cannot use them): settle for the smallest allocation within 95% of
	// this server's best.
	best := 0.0
	for _, o := range opts {
		if o.perf > best {
			best = o.perf
		}
	}
	for _, o := range opts {
		if o.perf >= 0.95*best {
			return o.alloc, o.perf
		}
	}
	return opts[len(opts)-1].alloc, opts[len(opts)-1].perf
}

// emitDecision records the full Schedule outcome — every ranked candidate's
// inputs plus the picks — on the tracer. It is only called when the tracer is
// enabled, so callers on the hot path pay a single nil check.
//
//quasar:cold tracing-only: every call site guards with s.Tracer.Enabled()
func (s *Scheduler) emitDecision(req *Request, want float64, cands []candidate, asn *Assignment, outcome string) {
	d := obs.ScheduleDecision{
		Workload: req.W.ID, NeedPerf: req.NeedPerf, Want: want,
		MaxNodes: req.MaxNodes, AcceptPartial: req.AcceptPartial,
		MaxCost: req.MaxCostPerHour, Outcome: outcome,
	}
	picked := map[int]bool{}
	if asn != nil {
		d.EstPerf, d.CostPerHour, d.Evictions = asn.EstPerf, asn.CostPerHour, asn.Evictions
		for _, na := range asn.Nodes {
			picked[na.Server.ID] = true
			d.Picks = append(d.Picks, obs.NodePick{
				Server: na.Server.ID, Cores: na.Alloc.Cores,
				MemGB: na.Alloc.MemoryGB,
			})
		}
	}
	// Full rankings scale with cluster size — O(servers) per decision on an
	// unpacked cluster — so when the tracer's controls cap candidates, build
	// only what truncation would keep: the first TopK in rank order plus
	// every picked server, recording the drop count up front. The payload is
	// byte-identical to truncating the full build; this just skips
	// materializing thousands of candidates that truncate would discard.
	if k := s.Tracer.Controls().TopK; k > 0 && len(cands) > k {
		kept := cands[:k:k]
		for _, c := range cands[k:] {
			if picked[c.server.ID] {
				kept = append(kept, c)
			}
		}
		d.CandidatesDropped = len(cands) - len(kept)
		cands = kept
	}
	for _, c := range cands {
		d.Candidates = append(d.Candidates, obs.Candidate{
			Server: c.server.ID, Platform: c.server.Platform.Name,
			Quality: c.quality, FreeCores: c.freeCores, FreeMemGB: c.freeMem,
			Evictable: len(c.evictable), Compatible: c.compat,
			Pressure: c.pressure, Picked: picked[c.server.ID],
		})
	}
	s.Tracer.Instant("manager", "sched", "decision", obs.Arg{Key: "decision", Val: d})
	s.Tracer.Registry().Counter("sched_decisions_total", "Schedule calls").Inc()
	if outcome != obs.OutcomePlaced {
		s.Tracer.Registry().Counter("sched_rejections_total", "Schedule calls rejected by admission control").Inc()
	}
}

// Schedule computes an assignment for the request. It does not mutate the
// cluster; the caller places the returned nodes (after performing the
// returned evictions).
func (s *Scheduler) Schedule(req *Request) (*Assignment, error) {
	t0 := s.Prof.Begin()
	defer s.Prof.End(prof.SubSched, t0)
	if req.NeedPerf <= 0 {
		if s.Tracer.Enabled() {
			s.emitDecision(req, 0, nil, nil, obs.OutcomeBadRequest)
		}
		//lint:allow(hotalloc) bad-request error path: never taken by a well-formed caller
		return nil, fmt.Errorf("sched: request for %s with NeedPerf %v", req.W.ID, req.NeedPerf)
	}
	maxNodes := req.MaxNodes
	if maxNodes <= 0 {
		maxNodes = 1
	}
	want := req.NeedPerf * s.Opts.PerfMargin
	cands := s.rank(req)
	if len(cands) == 0 {
		if s.Tracer.Enabled() {
			s.emitDecision(req, want, nil, nil, obs.OutcomeNoCapacity)
		}
		return nil, ErrNoCapacity
	}

	//lint:allow(hotalloc) the assignment is the returned decision: one allocation per Schedule call by contract
	asn := &Assignment{}
	sumPerf := 0.0
	if s.zoneScratch == nil {
		s.zoneScratch = make(map[int]bool) //lint:allow(hotalloc) lazy init for zero-value schedulers: runs once
	}
	clear(s.zoneScratch)
	usedZones := s.zoneScratch

	for ci := 0; ci < len(cands); ci++ {
		cand := cands[ci]
		if len(asn.Nodes) >= maxNodes {
			break
		}
		if s.Opts.SpreadZones && usedZones[cand.server.Zone] {
			// Prefer a near-equal candidate in a fresh fault zone: scan
			// ahead within 10% quality for one.
			for cj := ci + 1; cj < len(cands); cj++ {
				if cands[cj].quality < 0.9*cand.quality {
					break
				}
				if !usedZones[cands[cj].server.Zone] {
					cands[ci], cands[cj] = cands[cj], cands[ci]
					cand = cands[ci]
					break
				}
			}
		}
		n := len(asn.Nodes) + 1
		// Remaining per-node need if this is the last node we add.
		remaining := want/req.Est.ScaleOutEff(n) - sumPerf
		if remaining <= 0 {
			break
		}
		var alloc cluster.Alloc
		var perf float64
		if s.Opts.ScaleOutFirst {
			// Ablation: spread minimal slices across many servers.
			_, freeMem, _ := freeAfterEviction(cand.server)
			alloc = cluster.Alloc{
				Cores:    minInt(2, cand.freeCores),
				MemoryGB: math.Min(freeMem, 4),
			}
			if !alloc.Valid() {
				continue
			}
			pressure := cand.server.PressureOn(req.W.ID)
			perf = req.Est.NodePerf(cand.pidx, alloc, pressure)
		} else {
			alloc, perf = s.rightSizeAlloc(req, cand, remaining)
		}
		if !alloc.Valid() || perf <= 0 {
			continue
		}
		cost := float64(alloc.Cores) * CostPerCoreHour(cand.server.Platform)
		if req.MaxCostPerHour > 0 && asn.CostPerHour+cost > req.MaxCostPerHour {
			continue
		}
		//lint:allow(hotalloc) building the returned assignment: bounded by MaxNodes
		asn.Nodes = append(asn.Nodes, NodeAssign{Server: cand.server, Alloc: alloc})
		usedZones[cand.server.Zone] = true
		asn.CostPerHour += cost
		sumPerf += perf
		for _, ev := range cand.evictable {
			// Only evict what the allocation actually needs.
			if alloc.Cores > cand.server.FreeCores() || alloc.MemoryGB > cand.server.FreeMemGB() {
				//lint:allow(hotalloc) building the returned eviction list: bounded by displaced residents
				asn.Evictions = append(asn.Evictions, ev.WorkloadID)
			}
		}
		if sumPerf*req.Est.ScaleOutEff(len(asn.Nodes)) >= want {
			break
		}
	}

	if len(asn.Nodes) == 0 {
		if s.Tracer.Enabled() {
			s.emitDecision(req, want, cands, nil, obs.OutcomeNoCapacity)
		}
		return nil, ErrNoCapacity
	}
	asn.EstPerf = sumPerf * req.Est.ScaleOutEff(len(asn.Nodes))
	if !req.AcceptPartial && asn.EstPerf < req.NeedPerf*s.Opts.MinFill {
		if s.Tracer.Enabled() {
			s.emitDecision(req, want, cands, asn, obs.OutcomeBelowMinFill)
		}
		return nil, ErrNoCapacity
	}

	if req.W.Config != nil {
		// Tune framework parameters for the chosen per-node allocation
		// (Table 3): mappers per allocated core, right-sized heap, gzip
		// for disk-sensitive jobs.
		first := asn.Nodes[0]
		diskSensitive := req.Est.Tol[cluster.ResDiskIO] < 0.5
		cfg := classify.TunedConfig(first.Alloc.Cores, first.Alloc.MemoryGB, diskSensitive)
		asn.Config = &cfg
	}
	if s.Tracer.Enabled() {
		s.emitDecision(req, want, cands, asn, obs.OutcomePlaced)
	}
	return asn, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
