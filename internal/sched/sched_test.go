package sched

import (
	"testing"

	"quasar/internal/classify"
	"quasar/internal/cluster"
	"quasar/internal/sim"
	"quasar/internal/workload"
)

type fixture struct {
	cl  *cluster.Cluster
	eng *classify.Engine
	u   *workload.Universe
	s   *Scheduler
	est map[string]*classify.Estimates
}

func newFixture(t testing.TB) *fixture {
	t.Helper()
	platforms := cluster.LocalPlatforms()
	cl, err := cluster.New(platforms, []int{4, 4, 4, 4, 4, 4, 4, 4, 4, 4})
	if err != nil {
		t.Fatal(err)
	}
	u := workload.NewUniverse(platforms, 21, 3)
	opts := classify.DefaultOptions()
	opts.MaxNodes = 32
	eng := classify.NewEngine(platforms, opts, sim.NewRNG(5))
	for _, tp := range []workload.Type{workload.Hadoop, workload.Memcached, workload.SingleNode, workload.Spark} {
		for i := 0; i < 3; i++ {
			w := u.New(workload.Spec{Type: tp, Family: -1, MaxNodes: 4})
			eng.SeedOffline(w, classify.NewGroundTruthProber(w, platforms, sim.NewRNG(int64(i))))
		}
	}
	return &fixture{
		cl:  cl,
		eng: eng,
		u:   u,
		s:   New(cl, DefaultOptions()),
		est: map[string]*classify.Estimates{},
	}
}

func (f *fixture) classify(w *workload.Instance) *classify.Estimates {
	es := f.eng.Classify(w, classify.NewGroundTruthProber(w, f.eng.Platforms, sim.NewRNG(77)))
	f.est[w.ID] = es
	return es
}

func (f *fixture) request(w *workload.Instance, need float64, maxNodes int) *Request {
	return &Request{
		W: w, Est: f.classify(w), NeedPerf: need, MaxNodes: maxNodes,
		EstOf: func(id string) *classify.Estimates { return f.est[id] },
	}
}

// place applies an assignment to the cluster.
func (f *fixture) place(t testing.TB, w *workload.Instance, asn *Assignment) {
	t.Helper()
	for _, ev := range asn.Evictions {
		for _, srv := range f.cl.Servers {
			if srv.Placement(ev) != nil {
				if err := srv.Remove(ev); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	for _, n := range asn.Nodes {
		caused := w.CausedPressure(n.Server.Platform, n.Alloc)
		if _, err := n.Server.Place(w.ID, n.Alloc, caused, w.BestEffort); err != nil {
			t.Fatalf("place %s: %v", w.ID, err)
		}
	}
}

func TestScheduleMeetsNeed(t *testing.T) {
	f := newFixture(t)
	w := f.u.New(workload.Spec{Type: workload.Hadoop, Family: -1, MaxNodes: 8})
	req := f.request(w, 20, 8)
	asn, err := f.s.Schedule(req)
	if err != nil {
		t.Fatal(err)
	}
	if asn.EstPerf < 20 {
		t.Fatalf("estimated perf %.1f below need 20", asn.EstPerf)
	}
	if len(asn.Nodes) == 0 || len(asn.Nodes) > 8 {
		t.Fatalf("%d nodes", len(asn.Nodes))
	}
	for _, n := range asn.Nodes {
		if !n.Alloc.Valid() || n.Alloc.Cores > n.Server.Platform.Cores {
			t.Fatalf("bad alloc %+v", n.Alloc)
		}
	}
	if asn.Config == nil {
		t.Fatal("configured workload got no tuned config")
	}
}

func TestScheduleLeastResources(t *testing.T) {
	// A tiny need should get a small single-node allocation, not a fleet.
	f := newFixture(t)
	w := f.u.New(workload.Spec{Type: workload.Hadoop, Family: -1, MaxNodes: 8})
	asn, err := f.s.Schedule(f.request(w, 0.5, 8))
	if err != nil {
		t.Fatal(err)
	}
	if len(asn.Nodes) != 1 {
		t.Fatalf("tiny need spread over %d nodes", len(asn.Nodes))
	}
	totalCores := 0
	for _, n := range asn.Nodes {
		totalCores += n.Alloc.Cores
	}
	if totalCores > 8 {
		t.Fatalf("tiny need allocated %d cores", totalCores)
	}
}

func TestScheduleScalesOutForBigNeed(t *testing.T) {
	f := newFixture(t)
	w := f.u.New(workload.Spec{Type: workload.Hadoop, Family: -1, MaxNodes: 8})
	small, err := f.s.Schedule(f.request(w, 5, 8))
	if err != nil {
		t.Fatal(err)
	}
	w2 := f.u.New(workload.Spec{Type: workload.Hadoop, Family: -1, MaxNodes: 8})
	big, err := f.s.Schedule(f.request(w2, 500, 8))
	if err != nil {
		t.Fatal(err)
	}
	if len(big.Nodes) <= len(small.Nodes) {
		t.Fatalf("100x need did not scale out: %d vs %d nodes", len(big.Nodes), len(small.Nodes))
	}
}

func TestSchedulePrefersGoodPlatformsWhenIdle(t *testing.T) {
	f := newFixture(t)
	w := f.u.New(workload.Spec{Type: workload.SingleNode, Family: -1})
	asn, err := f.s.Schedule(f.request(w, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	// On an idle cluster the top-ranked server should be a high-quality
	// platform for this workload (not the bottom platform A).
	if asn.Nodes[0].Server.Platform.Name == "A" {
		t.Fatal("scheduler picked the weakest platform on an idle cluster")
	}
}

func TestScheduleRespectsMaxNodes(t *testing.T) {
	f := newFixture(t)
	w := f.u.New(workload.Spec{Type: workload.Hadoop, Family: -1, MaxNodes: 8})
	asn, err := f.s.Schedule(f.request(w, 1e6, 3))
	if err != nil {
		// Admission control may reject an impossible need; also fine.
		return
	}
	if len(asn.Nodes) > 3 {
		t.Fatalf("MaxNodes violated: %d", len(asn.Nodes))
	}
}

func TestAdmissionControlOnFullCluster(t *testing.T) {
	f := newFixture(t)
	// Fill every server completely with non-evictable placements.
	for i, srv := range f.cl.Servers {
		id := "filler"
		if _, err := srv.Place(id+string(rune('a'+i%26))+string(rune('a'+i/26)),
			cluster.Alloc{Cores: srv.Platform.Cores, MemoryGB: srv.Platform.MemoryGB},
			cluster.ResVec{}, false); err != nil {
			t.Fatal(err)
		}
	}
	w := f.u.New(workload.Spec{Type: workload.Hadoop, Family: -1, MaxNodes: 4})
	if _, err := f.s.Schedule(f.request(w, 10, 4)); err != ErrNoCapacity {
		t.Fatalf("full cluster: err = %v, want ErrNoCapacity", err)
	}
}

func TestBestEffortEviction(t *testing.T) {
	f := newFixture(t)
	// Fill every server with best-effort fillers.
	for i, srv := range f.cl.Servers {
		id := "be-" + string(rune('a'+i%26)) + string(rune('a'+i/26))
		if _, err := srv.Place(id,
			cluster.Alloc{Cores: srv.Platform.Cores, MemoryGB: srv.Platform.MemoryGB},
			cluster.ResVec{}, true); err != nil {
			t.Fatal(err)
		}
	}
	w := f.u.New(workload.Spec{Type: workload.Hadoop, Family: -1, MaxNodes: 4})
	asn, err := f.s.Schedule(f.request(w, 10, 4))
	if err != nil {
		t.Fatalf("evictable capacity should admit the workload: %v", err)
	}
	if len(asn.Evictions) == 0 {
		t.Fatal("no evictions planned on a best-effort-full cluster")
	}
	f.place(t, w, asn)
}

func TestInterferenceAwareAvoidsHostileColocation(t *testing.T) {
	f := newFixture(t)
	// Place a highly sensitive resident on the best platforms, with high
	// caused pressure so colocation hurts both ways.
	resident := f.u.New(workload.Spec{Type: workload.Memcached, Family: -1, MaxNodes: 4})
	resEst := f.classify(resident)
	for r := range resEst.Tol {
		resEst.Tol[r] = 0.02 // tolerates almost nothing
	}
	var hot cluster.ResVec
	for r := range hot {
		hot[r] = 0.9
	}
	jServers := f.cl.ByPlatform("J")
	for _, srv := range jServers {
		if _, err := srv.Place(resident.ID+srv.Platform.Name+string(rune('0'+srv.ID%10)),
			cluster.Alloc{Cores: 12, MemoryGB: 24}, hot, false); err != nil {
			t.Fatal(err)
		}
		f.est[resident.ID+srv.Platform.Name+string(rune('0'+srv.ID%10))] = resEst
	}
	w := f.u.New(workload.Spec{Type: workload.Hadoop, Family: -1, MaxNodes: 2})
	asn, err := f.s.Schedule(f.request(w, 5, 2))
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range asn.Nodes {
		if n.Server.Platform.Name == "J" {
			t.Fatal("scheduler colocated onto a hypersensitive resident's server")
		}
	}
}

func TestCostCap(t *testing.T) {
	f := newFixture(t)
	w := f.u.New(workload.Spec{Type: workload.Hadoop, Family: -1, MaxNodes: 8})
	req := f.request(w, 50, 8)
	unlimited, err := f.s.Schedule(req)
	if err != nil {
		t.Fatal(err)
	}
	req2 := f.request(f.u.New(workload.Spec{Type: workload.Hadoop, Family: -1, MaxNodes: 8}), 50, 8)
	req2.MaxCostPerHour = unlimited.CostPerHour / 3
	capped, err := f.s.Schedule(req2)
	if err != nil {
		return // rejection is an acceptable outcome of a tight cap
	}
	if capped.CostPerHour > req2.MaxCostPerHour+1e-9 {
		t.Fatalf("cost cap violated: %.3f > %.3f", capped.CostPerHour, req2.MaxCostPerHour)
	}
}

func TestScaleOutFirstAblation(t *testing.T) {
	f := newFixture(t)
	f.s.Opts.ScaleOutFirst = true
	w := f.u.New(workload.Spec{Type: workload.Hadoop, Family: -1, MaxNodes: 8})
	asn, err := f.s.Schedule(f.request(w, 30, 8))
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range asn.Nodes {
		if n.Alloc.Cores > 2 {
			t.Fatalf("scale-out-first gave %d cores on one node", n.Alloc.Cores)
		}
	}
}

func TestRejectsNonPositiveNeed(t *testing.T) {
	f := newFixture(t)
	w := f.u.New(workload.Spec{Type: workload.Hadoop, Family: -1, MaxNodes: 2})
	req := f.request(w, 0, 2)
	if _, err := f.s.Schedule(req); err == nil {
		t.Fatal("zero need accepted")
	}
}

func TestMemoryRightSizing(t *testing.T) {
	// A workload with a small working set should not be handed all the
	// memory of a big server.
	f := newFixture(t)
	w := f.u.New(workload.Spec{Type: workload.SingleNode, Family: -1})
	w.Genome.MemNeedGB = 2
	asn, err := f.s.Schedule(f.request(w, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if asn.Nodes[0].Alloc.MemoryGB > 24 {
		t.Fatalf("allocated %.0f GB for a 2 GB working set", asn.Nodes[0].Alloc.MemoryGB)
	}
}

func TestPlacementsApplyCleanly(t *testing.T) {
	// Schedule and place a stream of workloads; the cluster bookkeeping
	// must stay consistent and no assignment may overcommit a server.
	f := newFixture(t)
	placed := 0
	for i := 0; i < 20; i++ {
		tp := []workload.Type{workload.Hadoop, workload.Memcached, workload.SingleNode}[i%3]
		w := f.u.New(workload.Spec{Type: tp, Family: -1, MaxNodes: 4})
		need := []float64{10, 5000, 2}[i%3]
		asn, err := f.s.Schedule(f.request(w, need, 4))
		if err != nil {
			continue
		}
		f.place(t, w, asn)
		placed++
	}
	if placed < 10 {
		t.Fatalf("only %d of 20 workloads placed on a 40-server cluster", placed)
	}
	for _, srv := range f.cl.Servers {
		if srv.UsedCores() > srv.Platform.Cores || srv.UsedMemGB() > srv.Platform.MemoryGB+1e-9 {
			t.Fatalf("server %d overcommitted", srv.ID)
		}
	}
}
