package quasar_test

// One benchmark per table and figure of the paper's evaluation. Each
// iteration regenerates the artifact through the shared experiment runners
// (internal/experiments), printing nothing; run cmd/quasar-bench to see the
// rows/series themselves.
//
// The benchmarks use moderately sized scenario configurations so that the
// full suite (go test -bench=. -benchmem) completes in minutes; the paper-
// scale configurations are the Default*Config values used by quasar-bench.

import (
	"testing"

	"quasar/internal/experiments"
	"quasar/internal/trace"
)

func BenchmarkFig1TwitterTrace(b *testing.B) {
	cfg := trace.DefaultConfig()
	cfg.Servers, cfg.Workloads, cfg.Days = 300, 1200, 30
	for i := 0; i < b.N; i++ {
		r := experiments.Fig1(cfg)
		if r.Trace.MeanCPUResvPct() < r.Trace.MeanCPUUsedPct() {
			b.Fatal("reservation below usage")
		}
	}
}

func BenchmarkFig2Surfaces(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Fig2(3)
		if len(r.HadoopHeterogeneity) != 10 {
			b.Fatal("missing platforms")
		}
	}
}

func BenchmarkTable2Validation(b *testing.B) {
	cfg := experiments.DefaultTable2Config()
	cfg.Hadoop, cfg.Memcached, cfg.Webserver, cfg.SingleNode = 5, 5, 5, 40
	for i := 0; i < b.N; i++ {
		r := experiments.Table2(cfg)
		if len(r.Rows) != 4 {
			b.Fatal("missing classes")
		}
	}
}

func BenchmarkFig3Density(b *testing.B) {
	cfg := experiments.DefaultFig3Config()
	cfg.EntriesGrid = []int{1, 2, 4, 8}
	cfg.PerClass = 3
	for i := 0; i < b.N; i++ {
		r := experiments.Fig3(cfg)
		if len(r.Points) == 0 {
			b.Fatal("no points")
		}
	}
}

func BenchmarkFig5SingleBatch(b *testing.B) {
	cfg := experiments.DefaultFig5Config()
	cfg.Jobs = 4
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Jobs) != cfg.Jobs {
			b.Fatal("missing jobs")
		}
	}
}

func BenchmarkTable3HadoopConfig(b *testing.B) {
	// Table 3 derives from the Fig. 5 run of job H8; benchmark the full
	// path for that single job.
	cfg := experiments.DefaultFig5Config()
	cfg.Jobs = 8
	if testing.Short() {
		b.Skip("long")
	}
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if r.Jobs[7].QuasarConfig == nil {
			b.Fatal("no tuned config for H8")
		}
	}
}

func BenchmarkFig6MultiBatch(b *testing.B) {
	cfg := experiments.DefaultFig6Config()
	cfg.Hadoop, cfg.Storm, cfg.Spark, cfg.BestEffort = 4, 2, 2, 40
	cfg.HorizonSecs = 10000
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig6(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if r.QuasarUtilPct <= 0 {
			b.Fatal("no utilization measured")
		}
	}
}

func BenchmarkFig7Utilization(b *testing.B) {
	// Fig. 7 is the utilization view of the Fig. 6 scenario; benchmark the
	// heatmap collection path alone on the Quasar side.
	cfg := experiments.DefaultFig6Config()
	cfg.Hadoop, cfg.Storm, cfg.Spark, cfg.BestEffort = 3, 1, 1, 30
	cfg.HorizonSecs = 8000
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig6(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if r.QuasarHeat == nil || len(r.QuasarHeat.Times) == 0 {
			b.Fatal("no heatmap")
		}
	}
}

func BenchmarkFig8HotCRP(b *testing.B) {
	cfg := experiments.DefaultFig8Config()
	cfg.HorizonSecs = 6000
	cfg.BestEffort = 100
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig8(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Series) != 6 {
			b.Fatal("missing cells")
		}
	}
}

func BenchmarkFig9Stateful(b *testing.B) {
	cfg := experiments.DefaultFig9Config()
	cfg.HorizonSecs = 4 * 3600
	cfg.BestEffort = 150
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig9(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Services) != 4 {
			b.Fatal("missing services")
		}
	}
}

func BenchmarkFig10UtilizationWindows(b *testing.B) {
	cfg := experiments.DefaultFig9Config()
	cfg.HorizonSecs = 2 * 3600
	cfg.BestEffort = 80
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig9(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Windows) != 4 {
			b.Fatal("missing windows")
		}
	}
}

func BenchmarkFig11CloudProvider(b *testing.B) {
	cfg := experiments.DefaultFig11Config()
	cfg.Workloads = 150
	cfg.HorizonSecs = 8000
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig11(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Runs) != 3 {
			b.Fatal("missing managers")
		}
	}
}

func BenchmarkStragglerDetection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.Stragglers(5, 1)
		if r.Results["quasar"].DetectedFrac <= 0 {
			b.Fatal("no detections")
		}
	}
}

func BenchmarkPhaseDetection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Phases(8, 2)
		if err != nil {
			b.Fatal(err)
		}
		if r.Injected != 8 {
			b.Fatal("bad injection count")
		}
	}
}

func BenchmarkOverheads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Overheads(6, 3)
		if err != nil {
			b.Fatal(err)
		}
		if r.N == 0 {
			b.Fatal("no completed jobs")
		}
	}
}

func BenchmarkAblations(b *testing.B) {
	if testing.Short() {
		b.Skip("long")
	}
	for i := 0; i < b.N; i++ {
		r, err := experiments.Ablations(5)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Rows) != 6 {
			b.Fatal("missing variants")
		}
	}
}
