package quasar_test

import (
	"fmt"

	"quasar"
)

// Example demonstrates the performance-target interface end to end: build
// the paper's 40-server cluster, seed the manager's classification library,
// submit a Hadoop job with an execution-time target, and let Quasar size,
// place, and adapt the allocation.
func Example() {
	cl, err := quasar.NewLocalCluster()
	if err != nil {
		panic(err)
	}
	rt := quasar.NewRuntime(cl, quasar.RuntimeOptions{TickSecs: 5, Seed: 1})
	u := quasar.NewUniverse(cl.Platforms, 1, 3)
	mgr := quasar.NewManager(rt, quasar.DefaultManagerOptions())
	mgr.SeedLibrary(quasar.Library(u, 2))
	rt.SetManager(mgr)

	job := u.New(quasar.Spec{
		Type: quasar.Hadoop, Family: 0, MaxNodes: 4, TargetSlack: 1.3,
		Dataset: quasar.Dataset{Name: "example", SizeGB: 10, WorkMult: 1, MemMult: 1},
	})
	task := rt.Submit(job, 0, nil)
	rt.Run(job.Target.CompletionSecs * 2)
	rt.Stop()

	fmt.Println("completed:", task.Status == quasar.StatusCompleted)
	fmt.Println("met target:", task.DoneAt-task.SubmitAt <= job.Target.CompletionSecs)
	// Output:
	// completed: true
	// met target: true
}
